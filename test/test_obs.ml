(* Tests for the observability layer (lib/obs/) and its laws.

   Unit coverage: registry idempotence and kind checking, snapshot
   diff/reset algebra, histogram bucketing, ring-buffer tracing and
   the balance guarantee of the JSONL exporter.

   Laws (ISSUE 3):
     - determinism: two runs of Pd_engine.execute on the same instance
       produce structurally equal metric snapshots;
     - engine invariance (QCheck): `Naive and `Incremental runs, on
       `Seq and on a `Pool, agree exactly on the algorithm-level pd.*
       counters and differ only in selector cache/heap accounting; for
       the naive engine even the rebuild/snapshot counts must match
       between `Seq and `Pool (pooling it is scheduling-only), with
       selector.par_rebuilds accounting exactly the pooled share. *)

module Metrics = Ufp_obs.Metrics
module Trace = Ufp_obs.Trace
module Profile = Ufp_obs.Profile
module Openmetrics = Ufp_obs.Openmetrics
module Instance = Ufp_instance.Instance
module Request = Ufp_instance.Request
module Gen = Ufp_graph.Generators
module Workloads = Ufp_instance.Workloads
module Pd_engine = Ufp_core.Pd_engine
module Rng = Ufp_prelude.Rng
module Float_tol = Ufp_prelude.Float_tol

let check_float = Alcotest.(check (float Float_tol.check_eps))

(* --- metrics unit tests --- *)

let test_registration_idempotent () =
  let a = Metrics.counter "test.idem" in
  let b = Metrics.counter "test.idem" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "same cell" 2 (Metrics.value a);
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Ufp_obs.Metrics: \"test.idem\" is already a counter")
    (fun () -> ignore (Metrics.gauge "test.idem"))

let test_counter_ops () =
  let c = Metrics.counter "test.counter_ops" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.value c)

let test_gauge_ops () =
  let g = Metrics.gauge "test.gauge_ops" in
  Metrics.gauge_set g 1.5;
  Metrics.gauge_add g 2.0;
  check_float "set + add" 3.5 (Metrics.gauge_value g)

let test_histogram_buckets () =
  let h = Metrics.histogram "test.hist" in
  (* bucket 0 = [0,1), bucket 1 = [1,2), bucket 2 = [2,4), 3 = [4,8) *)
  List.iter (Metrics.observe h) [ 0.0; 0.5; 1.0; 1.9; 2.0; 3.0; 4.0; -1.0 ];
  let s = Metrics.snapshot () in
  let hs = List.assoc "test.hist" s.Metrics.histograms in
  Alcotest.(check int) "count" 8 hs.Metrics.h_count;
  check_float "sum" 11.4 hs.Metrics.h_sum;
  Alcotest.(check (list (pair int int)))
    "buckets" [ (0, 3); (1, 2); (2, 2); (3, 1) ] hs.Metrics.h_buckets;
  Alcotest.(check string) "label 0" "[0,1)" (Metrics.bucket_label 0);
  Alcotest.(check string) "label 2" "[2,4)" (Metrics.bucket_label 2)

(* NaN observations are quarantined in a dedicated cell: they must
   not poison the sum, the count, or any bucket, and the diff algebra
   must carry the quarantine count like any other cell. *)
let test_histogram_nan_quarantine () =
  let h = Metrics.histogram "test.hist_nan" in
  List.iter (Metrics.observe h) [ 1.0; Float.nan; 2.0; Float.nan; Float.nan ];
  let s = Metrics.snapshot () in
  let hs = List.assoc "test.hist_nan" s.Metrics.histograms in
  Alcotest.(check int) "count excludes NaN" 2 hs.Metrics.h_count;
  check_float "sum excludes NaN" 3.0 hs.Metrics.h_sum;
  Alcotest.(check int) "NaNs quarantined" 3 hs.Metrics.h_nan;
  Alcotest.(check (list (pair int int)))
    "buckets exclude NaN" [ (1, 1); (2, 1) ] hs.Metrics.h_buckets;
  let before = Metrics.snapshot () in
  Metrics.observe h Float.nan;
  Metrics.observe h 8.0;
  let delta = Metrics.diff before (Metrics.snapshot ()) in
  let dh = List.assoc "test.hist_nan" delta.Metrics.histograms in
  Alcotest.(check int) "diff isolates the window's NaN" 1 dh.Metrics.h_nan;
  Alcotest.(check int) "diff counts only the real sample" 1 dh.Metrics.h_count

let test_snapshot_diff_reset () =
  let c = Metrics.counter "test.diff" in
  Metrics.incr c;
  let before = Metrics.snapshot () in
  Metrics.add c 5;
  let delta = Metrics.diff before (Metrics.snapshot ()) in
  Alcotest.(check int) "delta counts the window only" 5
    (List.assoc "test.diff" delta.Metrics.counters);
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.value c);
  let s = Metrics.snapshot () in
  Alcotest.(check int) "still registered" 0
    (List.assoc "test.diff" s.Metrics.counters)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_renderings () =
  Metrics.reset ();
  let c = Metrics.counter "test.render" in
  Metrics.add c 7;
  let s = Metrics.snapshot () in
  let json = Metrics.to_json s in
  Alcotest.(check bool) "json mentions the counter" true
    (contains json "\"test.render\": 7");
  let table = Metrics.to_table ~title:"t" s in
  Alcotest.(check string) "table titled" "t" (Ufp_prelude.Table.title table);
  let hq = Metrics.histogram "test.render_nan" in
  Metrics.observe hq Float.nan;
  let s = Metrics.snapshot () in
  let md = Ufp_prelude.Table.to_markdown (Metrics.to_table ~title:"t" s) in
  Alcotest.(check bool) "table surfaces the quarantine" true
    (contains md "nan=1");
  Alcotest.(check bool) "json carries the quarantine" true
    (contains (Metrics.to_json s) "\"nan\": 1")

(* The Prometheus text exposition: sanitized names, counter [_total]
   samples, cumulative buckets closed by [le="+Inf"], the NaN
   quarantine surfacing as its own counter family, final [# EOF].
   bin/openmetrics_check.ml re-validates the same dump end-to-end in
   the runtest CLI smoke and in CI. *)
let test_openmetrics_render () =
  Metrics.reset ();
  Alcotest.(check string) "names sanitized" "test_om_counter"
    (Openmetrics.sanitize_name "test.om/counter");
  let c = Metrics.counter "test.om/counter" in
  Metrics.add c 3;
  let h = Metrics.histogram "test.om_hist" in
  List.iter (Metrics.observe h) [ 0.5; 3.0; Float.nan ];
  let text = Openmetrics.render (Metrics.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "dump contains %S" needle) true
        (contains text needle))
    [
      "# TYPE test_om_counter counter";
      "test_om_counter_total 3";
      "# TYPE test_om_hist histogram";
      "test_om_hist_bucket{le=\"1\"} 1";
      "test_om_hist_bucket{le=\"+Inf\"} 2";
      "test_om_hist_count 2";
      "test_om_hist_nan_samples_total 1";
    ];
  let n = String.length text in
  Alcotest.(check bool) "ends with # EOF" true
    (n >= 6 && String.sub text (n - 6) 6 = "# EOF\n")

(* --- trace unit tests --- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count_phase lines ph =
  List.length
    (List.filter (fun l -> contains l (Printf.sprintf "\"ph\": \"%s\"" ph)) lines)

let test_trace_off_by_default () =
  Trace.stop ();
  Alcotest.(check bool) "off" false (Trace.is_on ());
  Trace.instant "ignored";
  Alcotest.(check int) "nothing recorded" 0 (Trace.n_events ());
  Alcotest.(check int) "with_span still runs f" 3
    (Trace.with_span "ignored" (fun () -> 3))

let test_trace_spans_balance () =
  Trace.start ();
  Trace.with_span "outer" (fun () ->
      Trace.instant "tick";
      Trace.with_span "inner" (fun () -> ()));
  (try Trace.with_span "raises" (fun () -> failwith "boom") with Failure _ -> ());
  Trace.stop ();
  Alcotest.(check int) "2 B + 2 E + 1 i + 1 B/E pair" 7 (Trace.n_events ());
  let path = Filename.temp_file "ufp-test-trace" ".jsonl" in
  Trace.save_jsonl path;
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file path))
  in
  Sys.remove path;
  Alcotest.(check int) "7 lines" 7 (List.length lines);
  Alcotest.(check int) "begins" 3 (count_phase lines "B");
  Alcotest.(check int) "ends match" 3 (count_phase lines "E");
  Alcotest.(check int) "instants" 1 (count_phase lines "i");
  Trace.clear ()

let test_trace_ring_overflow_stays_balanced () =
  Trace.start ~capacity:8 ();
  for _ = 1 to 20 do
    Trace.with_span "span" (fun () -> ())
  done;
  Trace.stop ();
  Alcotest.(check int) "ring full" 8 (Trace.n_events ());
  Alcotest.(check bool) "drops counted" true (Trace.n_dropped () > 0);
  let path = Filename.temp_file "ufp-test-ring" ".jsonl" in
  Trace.save_jsonl path;
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file path))
  in
  Sys.remove path;
  (* The exporter must skip any E whose B was overwritten. *)
  Alcotest.(check int) "balanced after wrap" (count_phase lines "B")
    (count_phase lines "E");
  Trace.clear ()

(* --- profiler unit tests --- *)

(* Nested spans fold into self-vs-total exactly: the outer phase's
   self time excludes the inner span it wraps, and with [~gc:true]
   the allocation columns attribute the same way. *)
let test_profile_phases () =
  (* Small arrays, many times: minor-heap allocations, so the minor
     word columns are exercised (one big array would go straight to
     the major heap). *)
  let churn () =
    for _ = 1 to 200 do
      ignore (Sys.opaque_identity (Array.make 100 0.0))
    done
  in
  Trace.start ~gc:true ();
  Trace.with_span "prof.outer" (fun () ->
      churn ();
      Trace.with_span "prof.inner" (fun () -> churn ()));
  Trace.with_span "prof.outer" (fun () -> ());
  Trace.stop ();
  let p = Profile.of_trace () in
  Trace.clear ();
  Alcotest.(check bool) "gc sampled" true p.Profile.gc_sampled;
  let find name =
    List.find (fun ph -> ph.Profile.p_name = name) p.Profile.phases
  in
  let outer = find "prof.outer" and inner = find "prof.inner" in
  Alcotest.(check int) "outer folded both spans" 2 outer.Profile.p_count;
  Alcotest.(check int) "inner folded once" 1 inner.Profile.p_count;
  Alcotest.(check bool) "self excludes the child" true
    (outer.Profile.p_self_ns <= outer.Profile.p_total_ns);
  Alcotest.(check bool) "outer total covers the inner span" true
    (outer.Profile.p_total_ns >= inner.Profile.p_total_ns);
  Alcotest.(check bool) "inner allocation not billed to outer self" true
    (inner.Profile.p_minor_w > 0.0);
  let json = Profile.to_json p in
  Alcotest.(check bool) "schema stamped" true
    (contains json "\"schema\": \"ufp-profile/1\"");
  Alcotest.(check bool) "gc flag serialized" true
    (contains json "\"gc_sampled\": true");
  let table = Profile.to_table ~title:"p" p in
  Alcotest.(check string) "table titled" "p" (Ufp_prelude.Table.title table)

(* Without [~gc:true] the profiler still folds wall time but must say
   the allocation columns are not sampled. *)
let test_profile_without_gc () =
  Trace.start ();
  Trace.with_span "prof.plain" (fun () -> ());
  Trace.stop ();
  let p = Profile.of_trace () in
  Trace.clear ();
  Alcotest.(check bool) "gc not sampled" false p.Profile.gc_sampled;
  let ph = List.find (fun ph -> ph.Profile.p_name = "prof.plain") p.Profile.phases in
  check_float "no words attributed" 0.0 ph.Profile.p_minor_w

(* --- domain safety (the Ufp_par contract) --- *)

module Pool = Ufp_par.Pool

(* Counter, gauge and histogram updates racing from 3 domains must
   lose nothing: integer RMWs commute, and the float CAS loop adds
   integer-valued summands exactly. *)
let test_metrics_domain_safe () =
  let c = Metrics.counter "test.par_counter" in
  let g = Metrics.gauge "test.par_gauge" in
  let h = Metrics.histogram "test.par_hist" in
  let before_c = Metrics.value c and before_g = Metrics.gauge_value g in
  let before_h =
    (List.assoc "test.par_hist" (Metrics.snapshot ()).Metrics.histograms)
      .Metrics.h_count
  in
  let n = 3000 in
  Pool.with_pool ~domains:3 (fun pool ->
      Pool.parallel_for ~pool ~chunk:7 ~n (fun i ->
          Metrics.incr c;
          Metrics.gauge_add g 2.0;
          Metrics.observe h (float_of_int (i mod 5))));
  Alcotest.(check int) "no lost increments" (before_c + n) (Metrics.value c);
  check_float "no lost gauge adds"
    (before_g +. (2.0 *. float_of_int n))
    (Metrics.gauge_value g);
  let hs = List.assoc "test.par_hist" (Metrics.snapshot ()).Metrics.histograms in
  Alcotest.(check int) "no lost observations" (before_h + n) hs.Metrics.h_count

(* [gauge_set] is documented for quiescent moments: after parallel
   [gauge_add]s have joined, a set must override every shard's
   deposits, not just the setting domain's. *)
let test_gauge_set_overrides_all_shards () =
  let g = Metrics.gauge "test.par_gauge_set" in
  Pool.with_pool ~domains:3 (fun pool ->
      Pool.parallel_for ~pool ~n:300 (fun _ -> Metrics.gauge_add g 1.0));
  check_float "parallel adds all landed" 300.0 (Metrics.gauge_value g);
  Metrics.gauge_set g 7.5;
  check_float "set overrides every shard" 7.5 (Metrics.gauge_value g);
  Metrics.gauge_add g 0.5;
  check_float "adds resume on top of the set" 8.0 (Metrics.gauge_value g)

(* --- the sharded-envelope law (QCheck) ---

   A snapshot taken WHILE writer tasks hammer a sharded counter may
   straggle — per-domain cells are plain stores — but it must never
   leave the [writes finished, writes started] envelope, and
   successive totals seen by one reader must be monotone (shard cells
   are coherent and only ever incremented).  After the pool joins,
   the total is exact: the pool's completion Atomics give the
   coordinating domain happens-before over every shard store.  One
   pool task snapshots in a loop; the envelope bounds are Atomics
   bumped around each write. *)
let envelope_law =
  QCheck.Test.make ~count:8
    ~name:"concurrent snapshots stay inside the write envelope"
    QCheck.(pair (int_range 200 2000) (int_range 1 3))
    (fun (per_task, writers) ->
      let c = Metrics.counter "test.envelope" in
      let base = Metrics.value c in
      let started = Atomic.make 0 and finished = Atomic.make 0 in
      let writers_done = Atomic.make 0 in
      let violations = Atomic.make 0 in
      let last = Atomic.make 0 in
      Pool.with_pool ~domains:2 (fun pool ->
          ignore
            (* chunk:1 so the reader task can never share a claimed
               chunk with a writer it would then spin-wait on. *)
            (Pool.parallel_mapi ~pool ~chunk:1 ~n:(writers + 1) (fun task ->
                 if task = 0 then
                   (* Reader: snapshot until every writer has joined.
                      With 2 pool participants the writer tasks drain
                      on the other domain, so this loop terminates. *)
                   while Atomic.get writers_done < writers do
                     let lo = Atomic.get finished in
                     let s = Metrics.snapshot () in
                     let hi = Atomic.get started in
                     let total =
                       List.assoc "test.envelope" s.Metrics.counters - base
                     in
                     if total < lo || total > hi then Atomic.incr violations;
                     if total < Atomic.get last then Atomic.incr violations;
                     Atomic.set last total;
                     Domain.cpu_relax ()
                   done
                 else begin
                   for _ = 1 to per_task do
                     Atomic.incr started;
                     Metrics.incr c;
                     Atomic.incr finished
                   done;
                   Atomic.incr writers_done
                 end)));
      if Atomic.get violations > 0 then
        QCheck.Test.fail_reportf "%d envelope violations"
          (Atomic.get violations);
      (* Post-join exactness: nothing lost, nothing duplicated. *)
      if Metrics.value c - base <> writers * per_task then
        QCheck.Test.fail_reportf "post-join total %d, wanted %d"
          (Metrics.value c - base) (writers * per_task);
      true)

(* Concurrent spans from several domains: every event carries its
   recording domain's tid, the export balances per tid, and the
   locked timestamping keeps ts globally monotone. *)
let test_trace_domain_safe () =
  Trace.start ();
  Pool.with_pool ~domains:3 (fun pool ->
      Pool.parallel_for ~pool ~n:60 (fun i ->
          Trace.with_span "par.outer" (fun () ->
              Trace.instant "par.tick";
              Trace.with_span "par.inner" (fun () -> ignore (i * i)))));
  Trace.stop ();
  Alcotest.(check int) "5 events per index" (60 * 5) (Trace.n_events ());
  let path = Filename.temp_file "ufp-test-par-trace" ".jsonl" in
  Trace.save_jsonl path;
  let lines =
    List.filter (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (read_file path))
  in
  Sys.remove path;
  Trace.clear ();
  Alcotest.(check int) "all events exported" (60 * 5) (List.length lines);
  Alcotest.(check int) "balanced" (count_phase lines "B") (count_phase lines "E");
  (* Depth per tid, and global ts monotonicity, exactly what
     bin/trace_check.ml enforces on the CLI path. *)
  let depths = Hashtbl.create 8 in
  let last_ts = ref neg_infinity in
  List.iter
    (fun line ->
      let field key =
        match String.index_opt line ':' with
        | None -> None
        | Some _ ->
          let marker = Printf.sprintf "\"%s\": " key in
          let rec find from =
            if from + String.length marker > String.length line then None
            else if String.sub line from (String.length marker) = marker then
              Some (from + String.length marker)
            else find (from + 1)
          in
          find 0
      in
      let num_at pos =
        let stop = ref pos in
        while
          !stop < String.length line
          && (match line.[!stop] with
             | '0' .. '9' | '.' | '-' | 'e' -> true
             | _ -> false)
        do
          incr stop
        done;
        float_of_string (String.sub line pos (!stop - pos))
      in
      let tid =
        match field "tid" with
        | Some pos -> int_of_float (num_at pos)
        | None -> Alcotest.fail "event without tid"
      in
      let ts =
        match field "ts" with
        | Some pos -> num_at pos
        | None -> Alcotest.fail "event without ts"
      in
      if ts < !last_ts then Alcotest.fail "ts regressed across domains";
      last_ts := ts;
      let d = Option.value ~default:0 (Hashtbl.find_opt depths tid) in
      if contains line "\"ph\": \"B\"" then Hashtbl.replace depths tid (d + 1)
      else if contains line "\"ph\": \"E\"" then begin
        if d = 0 then Alcotest.fail "unmatched E on a tid";
        Hashtbl.replace depths tid (d - 1)
      end)
    lines;
  Hashtbl.iter
    (fun tid d ->
      if d <> 0 then Alcotest.failf "tid %d left %d spans open" tid d)
    depths

(* --- the determinism law --- *)

let grid_instance ~rows ~cols ~capacity ~count seed =
  let rng = Rng.create seed in
  let g = Gen.grid ~rows ~cols ~capacity in
  Instance.create g (Workloads.random_requests rng g ~count ())

let snapshot_of_run ?(selector = `Incremental) ?(pool = `Seq) config inst =
  Metrics.reset ();
  let run = Pd_engine.execute ~selector ~pool config inst in
  (Metrics.snapshot (), run)

let test_metrics_deterministic () =
  let inst = grid_instance ~rows:5 ~cols:5 ~capacity:45.0 ~count:60 7 in
  let config = Pd_engine.algorithm_1 ~eps:0.3 ~b:45.0 in
  let s1, r1 = snapshot_of_run config inst in
  let s2, r2 = snapshot_of_run config inst in
  Alcotest.(check bool) "same solution" true
    (r1.Pd_engine.solution = r2.Pd_engine.solution);
  Alcotest.(check bool) "identical snapshots" true (s1 = s2)

(* --- the engine-invariance law (QCheck) --- *)

(* pd.* is decided by the algorithm; selector.* is cache economics and
   legitimately differs between engines (dijkstra.* differs too: the
   naive engine recomputes trees it could have cached). *)
let algorithm_level name =
  String.length name >= 3 && String.sub name 0 3 = "pd."

let pd_counters snapshot =
  List.filter (fun (n, _) -> algorithm_level n) snapshot.Metrics.counters

let engine_agreement_law =
  QCheck.Test.make ~count:30
    ~name:"engines agree on pd.* metrics across `Seq and `Pool"
    QCheck.(
      triple (int_range 3 5) (int_range 3 5) (int_range 1 1000))
    (fun (rows, cols, seed) ->
      let m = (rows * (cols - 1)) + (cols * (rows - 1)) in
      let eps = 0.3 in
      let capacity = Float.ceil (log (float_of_int m) /. (eps *. eps)) in
      let inst = grid_instance ~rows ~cols ~capacity ~count:25 seed in
      let config = Pd_engine.algorithm_1 ~eps ~b:capacity in
      Pool.with_pool ~domains:2 (fun pool ->
          let s_naive, r_naive = snapshot_of_run ~selector:`Naive config inst in
          let s_incr, r_incr =
            snapshot_of_run ~selector:`Incremental config inst
          in
          let s_naive_p, r_naive_p =
            snapshot_of_run ~selector:`Naive ~pool config inst
          in
          let s_incr_p, r_incr_p =
            snapshot_of_run ~selector:`Incremental ~pool config inst
          in
          let counter name s = List.assoc name s.Metrics.counters in
          List.iter
            (fun (label, s, r) ->
              if r.Pd_engine.solution <> r_naive.Pd_engine.solution then
                QCheck.Test.fail_reportf "solutions differ (%s)" label;
              if pd_counters s <> pd_counters s_naive then
                QCheck.Test.fail_reportf "pd.* counters differ (%s)" label;
              if
                List.assoc "pd.d1_growth" s.Metrics.gauges
                <> List.assoc "pd.d1_growth" s_naive.Metrics.gauges
              then QCheck.Test.fail_reportf "pd.d1_growth differs (%s)" label;
              if
                List.assoc "pd.path_edges" s.Metrics.histograms
                <> List.assoc "pd.path_edges" s_naive.Metrics.histograms
              then QCheck.Test.fail_reportf "pd.path_edges differs (%s)" label)
            [
              ("incremental/seq", s_incr, r_incr);
              ("naive/pool", s_naive_p, r_naive_p);
              ("incremental/pool", s_incr_p, r_incr_p);
            ];
          (* And the counters that SHOULD differ do: the naive engine never
             touches the candidate heap, pooled or not. *)
          let heap s = counter "selector.heap_pops" s in
          if heap s_naive <> 0 || heap s_naive_p <> 0 then
            QCheck.Test.fail_report "naive engine used the candidate heap";
          if r_incr.Pd_engine.iterations > 0 && heap s_incr = 0 then
            QCheck.Test.fail_report "incremental engine bypassed the heap";
          (* Pooling the naive engine is scheduling-only: it rebuilds the
             exact same set of trees (and hence builds the same
             snapshots) as the sequential run, just on worker domains. *)
          if
            counter "selector.tree_rebuilds" s_naive_p
            <> counter "selector.tree_rebuilds" s_naive
          then
            QCheck.Test.fail_report
              "pooled naive rebuilt a different tree set than seq";
          if
            counter "dijkstra.snapshot_builds" s_naive_p
            <> counter "dijkstra.snapshot_builds" s_naive
          then
            QCheck.Test.fail_report
              "pooled naive built a different snapshot count than seq";
          (* selector.par_rebuilds accounts exactly the pooled rebuilds:
             zero in `Seq runs, everything in a pooled naive run. *)
          if
            counter "selector.par_rebuilds" s_naive <> 0
            || counter "selector.par_rebuilds" s_incr <> 0
          then QCheck.Test.fail_report "seq run counted par_rebuilds";
          if
            counter "selector.par_rebuilds" s_naive_p
            <> counter "selector.tree_rebuilds" s_naive_p
          then
            QCheck.Test.fail_report
              "pooled naive rebuild not fully accounted as par_rebuilds";
          true))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "registration idempotent" `Quick
            test_registration_idempotent;
          Alcotest.test_case "counter ops" `Quick test_counter_ops;
          Alcotest.test_case "gauge ops" `Quick test_gauge_ops;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_buckets;
          Alcotest.test_case "NaN observations quarantined" `Quick
            test_histogram_nan_quarantine;
          Alcotest.test_case "snapshot diff and reset" `Quick
            test_snapshot_diff_reset;
          Alcotest.test_case "table and json renderings" `Quick test_renderings;
          Alcotest.test_case "openmetrics exposition" `Quick
            test_openmetrics_render;
        ] );
      ( "trace",
        [
          Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "spans balance in export" `Quick
            test_trace_spans_balance;
          Alcotest.test_case "ring overflow stays balanced" `Quick
            test_trace_ring_overflow_stays_balanced;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nested spans split self from total" `Quick
            test_profile_phases;
          Alcotest.test_case "gc columns honest when unsampled" `Quick
            test_profile_without_gc;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "metrics lose no updates across domains" `Quick
            test_metrics_domain_safe;
          Alcotest.test_case "gauge_set overrides all shards" `Quick
            test_gauge_set_overrides_all_shards;
          Alcotest.test_case "trace tags and balances per domain" `Quick
            test_trace_domain_safe;
          QCheck_alcotest.to_alcotest envelope_law;
        ] );
      ( "laws",
        [
          Alcotest.test_case "metric snapshots are deterministic" `Quick
            test_metrics_deterministic;
          QCheck_alcotest.to_alcotest engine_agreement_law;
        ] );
    ]
