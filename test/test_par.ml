(* Tests for Ufp_par.Pool: the fixed-size domain pool behind the
   parallel payment engine.

   Unit coverage: exactly-once index execution, parallel_mapi slot
   placement, chunked claiming, pool reuse across jobs, worker-less
   (size 1) pools, empty jobs, exception propagation with the pool
   surviving, shutdown semantics, and the with_jobs/jobs_from_env
   CLI conveniences.  The end-to-end bitwise payment laws live in
   test_mech.ml. *)

module Pool = Ufp_par.Pool

(* Shared across cases: the tests exercise reuse anyway, and on a
   single-core host repeated spawn/join is the slow part. *)
let pool3 = lazy (Pool.create ~domains:3 ())

let () =
  at_exit (fun () ->
      if Lazy.is_val pool3 then Pool.shutdown (Lazy.force pool3))

let test_create_invalid () =
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Ufp_par.Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

let test_size () =
  Alcotest.(check int) "size 3" 3 (Pool.size (Lazy.force pool3));
  let p1 = Pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Pool.size p1);
  Pool.shutdown p1

let test_mapi_matches_init () =
  let pool = `Pool (Lazy.force pool3) in
  let f i = (i * i) + 1 in
  Alcotest.(check (array int))
    "mapi = Array.init" (Array.init 100 f)
    (Pool.parallel_mapi ~pool ~n:100 f)

let test_mapi_floats_bitwise () =
  let pool = `Pool (Lazy.force pool3) in
  let f i = Float.ldexp (sin (float_of_int i)) (i mod 7) in
  let seq = Array.init 257 f in
  let par = Pool.parallel_mapi ~pool ~chunk:5 ~n:257 f in
  Array.iteri
    (fun i x ->
      if not (Float.equal x par.(i)) then
        Alcotest.failf "slot %d differs: %h vs %h" i x par.(i))
    seq

let test_for_exactly_once () =
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for ~pool:(`Pool (Lazy.force pool3)) ~chunk:3 ~n (fun i ->
      Atomic.incr hits.(i));
  Array.iteri
    (fun i h ->
      if Atomic.get h <> 1 then
        Alcotest.failf "index %d ran %d times" i (Atomic.get h))
    hits

let test_reuse_across_jobs () =
  let pool = `Pool (Lazy.force pool3) in
  for round = 1 to 20 do
    let got = Pool.parallel_mapi ~pool ~n:round (fun i -> i + round) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init round (fun i -> i + round))
      got
  done

let test_worker_less_pool () =
  (* domains = 1: no workers are spawned, the caller drains the job. *)
  let p = Pool.create ~domains:1 () in
  Alcotest.(check (array int))
    "caller-only execution" (Array.init 10 succ)
    (Pool.parallel_mapi ~pool:(`Pool p) ~n:10 succ);
  Pool.shutdown p

let test_empty_job () =
  let pool = `Pool (Lazy.force pool3) in
  Alcotest.(check (array int)) "n = 0 mapi" [||] (Pool.parallel_mapi ~pool ~n:0 succ);
  Pool.parallel_for ~pool ~n:0 (fun _ -> Alcotest.fail "body must not run")

exception Boom of int

let test_exception_propagates () =
  let pool = `Pool (Lazy.force pool3) in
  (try
     Pool.parallel_for ~pool ~n:100 (fun i -> if i = 41 then raise (Boom i));
     Alcotest.fail "expected Boom"
   with Boom 41 -> ());
  (* The pool survives a failed job. *)
  Alcotest.(check (array int))
    "pool usable after exception" (Array.init 8 succ)
    (Pool.parallel_mapi ~pool ~n:8 succ)

let test_seq_default () =
  (* Without a pool the calls are plain loops on the calling domain. *)
  Alcotest.(check (array int)) "seq mapi" (Array.init 9 succ)
    (Pool.parallel_mapi ~n:9 succ);
  let sum = ref 0 in
  Pool.parallel_for ~n:5 (fun i -> sum := !sum + i);
  Alcotest.(check int) "seq for" 10 !sum

let test_shutdown_rejects_jobs () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "post-shutdown job rejected"
    (Invalid_argument "Ufp_par.Pool: job submitted after shutdown") (fun () ->
      Pool.parallel_for ~pool:(`Pool p) ~n:4 ignore)

let test_with_pool_cleans_up () =
  let leaked = ref None in
  let out =
    Pool.with_pool ~domains:2 (fun choice ->
        (match choice with `Pool p -> leaked := Some p | `Seq -> ());
        Pool.parallel_mapi ~pool:choice ~n:6 succ)
  in
  Alcotest.(check (array int)) "result" (Array.init 6 succ) out;
  match !leaked with
  | None -> Alcotest.fail "with_pool must pass a pool"
  | Some p ->
    Alcotest.check_raises "pool shut down on exit"
      (Invalid_argument "Ufp_par.Pool: job submitted after shutdown")
      (fun () -> Pool.parallel_for ~pool:(`Pool p) ~n:1 ignore)

let test_with_jobs () =
  Alcotest.(check bool) "jobs 1 is Seq" true
    (Pool.with_jobs 1 (function `Seq -> true | `Pool _ -> false));
  Alcotest.(check bool) "jobs 3 is a pool of 3" true
    (Pool.with_jobs 3 (function `Seq -> false | `Pool p -> Pool.size p = 3));
  (* jobs = 0 resolves to the host's recommended count, which on a
     single-core machine legitimately degenerates to `Seq. *)
  let expected_domains = Domain.recommended_domain_count () in
  Alcotest.(check bool) "jobs 0 uses the recommended count" true
    (Pool.with_jobs 0 (function
      | `Seq -> expected_domains <= 1
      | `Pool p -> Pool.size p = expected_domains))

let test_jobs_from_env () =
  (* The suite may itself run under UFP_JOBS (CI exports it), so test
     against whatever the environment actually says. *)
  let expected =
    match Sys.getenv_opt "UFP_JOBS" with
    | None -> 7
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 0 -> j
      | _ -> 7)
  in
  Alcotest.(check int) "env/default honoured" expected
    (Pool.jobs_from_env ~default:7 ())

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "par"
    [
      ( "pool",
        [
          tc "create validates" `Quick test_create_invalid;
          tc "size" `Quick test_size;
          tc "mapi matches Array.init" `Quick test_mapi_matches_init;
          tc "mapi floats bitwise" `Quick test_mapi_floats_bitwise;
          tc "each index exactly once" `Quick test_for_exactly_once;
          tc "reuse across jobs" `Quick test_reuse_across_jobs;
          tc "worker-less pool" `Quick test_worker_less_pool;
          tc "empty job" `Quick test_empty_job;
          tc "exception propagates" `Quick test_exception_propagates;
          tc "sequential default" `Quick test_seq_default;
          tc "shutdown" `Quick test_shutdown_rejects_jobs;
        ] );
      ( "conveniences",
        [
          tc "with_pool cleans up" `Quick test_with_pool_cleans_up;
          tc "with_jobs" `Quick test_with_jobs;
          tc "jobs_from_env" `Quick test_jobs_from_env;
        ] );
    ]
