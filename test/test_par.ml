(* Tests for Ufp_par: the work-stealing domain pool behind the
   parallel payment engine, and the Chase–Lev deque under it.

   Unit coverage: exactly-once index execution, parallel_mapi slot
   placement, pool reuse across jobs, worker-less (size 1) pools,
   empty jobs, exception propagation with the pool surviving,
   shutdown semantics, the with_jobs/jobs_from_env CLI conveniences,
   deque ordering (owner LIFO, thief FIFO) and a 3-domain
   exactly-once hammer over [Pool.submit].  The end-to-end bitwise
   payment laws live in test_mech.ml. *)

module Pool = Ufp_par.Pool
module Deque = Ufp_par.Deque
module Metrics = Ufp_obs.Metrics

(* Shared across cases: the tests exercise reuse anyway, and on a
   single-core host repeated spawn/join is the slow part. *)
let pool3 = lazy (Pool.create ~domains:3 ())

let () =
  at_exit (fun () ->
      if Lazy.is_val pool3 then Pool.shutdown (Lazy.force pool3))

let test_create_invalid () =
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Ufp_par.Pool.create: domains < 1") (fun () ->
      ignore (Pool.create ~domains:0 ()))

let test_size () =
  Alcotest.(check int) "size 3" 3 (Pool.size (Lazy.force pool3));
  let p1 = Pool.create ~domains:1 () in
  Alcotest.(check int) "size 1" 1 (Pool.size p1);
  Pool.shutdown p1

let test_mapi_matches_init () =
  let pool = `Pool (Lazy.force pool3) in
  let f i = (i * i) + 1 in
  Alcotest.(check (array int))
    "mapi = Array.init" (Array.init 100 f)
    (Pool.parallel_mapi ~pool ~n:100 f)

let test_mapi_floats_bitwise () =
  let pool = `Pool (Lazy.force pool3) in
  let f i = Float.ldexp (sin (float_of_int i)) (i mod 7) in
  let seq = Array.init 257 f in
  let par = Pool.parallel_mapi ~pool ~chunk:5 ~n:257 f in
  Array.iteri
    (fun i x ->
      if not (Float.equal x par.(i)) then
        Alcotest.failf "slot %d differs: %h vs %h" i x par.(i))
    seq

let test_for_exactly_once () =
  let n = 1000 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for ~pool:(`Pool (Lazy.force pool3)) ~chunk:3 ~n (fun i ->
      Atomic.incr hits.(i));
  Array.iteri
    (fun i h ->
      if Atomic.get h <> 1 then
        Alcotest.failf "index %d ran %d times" i (Atomic.get h))
    hits

let test_reuse_across_jobs () =
  let pool = `Pool (Lazy.force pool3) in
  for round = 1 to 20 do
    let got = Pool.parallel_mapi ~pool ~n:round (fun i -> i + round) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init round (fun i -> i + round))
      got
  done

let test_back_to_back_jobs () =
  (* Regression for the cross-job steal race: run() must quiesce every
     worker before returning, or a thief still sweeping deques from
     job k can steal job k+1's freshly seeded range and execute it
     under job k's closure — corrupting job k+1 (some index runs the
     wrong f) and hanging its caller (the stolen indices never count
     toward job k+1's completion). Many tiny jobs back to back is the
     widest window; the failure modes are a wrong hit count below or
     this test never finishing. *)
  let pool = `Pool (Lazy.force pool3) in
  for round = 1 to 300 do
    let n = 1 + (round mod 7) in
    let hits = Array.init n (fun _ -> Atomic.make 0) in
    Pool.parallel_for_dynamic ~pool ~grain:1 ~n (fun i -> Atomic.incr hits.(i));
    Array.iteri
      (fun i h ->
        if Atomic.get h <> 1 then
          Alcotest.failf "round %d: index %d ran %d times" round i
            (Atomic.get h))
      hits
  done

let test_nested_submission_rejected () =
  (* The caller-side deque has one owner per job, so re-entering the
     pool from inside a task closure must fail loudly instead of
     corrupting the scheduler. The inner Invalid_argument propagates
     through the usual first-exception channel, and the pool survives. *)
  let p = Pool.create ~domains:2 () in
  let pool = `Pool p in
  Alcotest.check_raises "nested submission rejected"
    (Invalid_argument
       "Ufp_par.Pool: concurrent or nested job submission on one pool")
    (fun () ->
      Pool.parallel_for ~pool ~n:4 (fun _ ->
          Pool.parallel_for ~pool ~n:2 ignore));
  Alcotest.(check (array int))
    "pool usable after rejection" (Array.init 5 succ)
    (Pool.parallel_mapi ~pool ~n:5 succ);
  Pool.shutdown p

let test_worker_less_pool () =
  (* domains = 1: no workers are spawned, the caller drains the job. *)
  let p = Pool.create ~domains:1 () in
  Alcotest.(check (array int))
    "caller-only execution" (Array.init 10 succ)
    (Pool.parallel_mapi ~pool:(`Pool p) ~n:10 succ);
  Pool.shutdown p

let test_empty_job () =
  let pool = `Pool (Lazy.force pool3) in
  Alcotest.(check (array int)) "n = 0 mapi" [||] (Pool.parallel_mapi ~pool ~n:0 succ);
  Pool.parallel_for ~pool ~n:0 (fun _ -> Alcotest.fail "body must not run")

exception Boom of int

let test_exception_propagates () =
  let pool = `Pool (Lazy.force pool3) in
  (try
     Pool.parallel_for ~pool ~n:100 (fun i -> if i = 41 then raise (Boom i));
     Alcotest.fail "expected Boom"
   with Boom 41 -> ());
  (* The pool survives a failed job. *)
  Alcotest.(check (array int))
    "pool usable after exception" (Array.init 8 succ)
    (Pool.parallel_mapi ~pool ~n:8 succ)

let test_seq_default () =
  (* Without a pool the calls are plain loops on the calling domain. *)
  Alcotest.(check (array int)) "seq mapi" (Array.init 9 succ)
    (Pool.parallel_mapi ~n:9 succ);
  let sum = ref 0 in
  Pool.parallel_for ~n:5 (fun i -> sum := !sum + i);
  Alcotest.(check int) "seq for" 10 !sum

let test_shutdown_rejects_jobs () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "post-shutdown job rejected"
    (Invalid_argument "Ufp_par.Pool: job submitted after shutdown") (fun () ->
      Pool.parallel_for ~pool:(`Pool p) ~n:4 ignore)

let test_with_pool_cleans_up () =
  let leaked = ref None in
  let out =
    Pool.with_pool ~domains:2 (fun choice ->
        (match choice with `Pool p -> leaked := Some p | `Seq -> ());
        Pool.parallel_mapi ~pool:choice ~n:6 succ)
  in
  Alcotest.(check (array int)) "result" (Array.init 6 succ) out;
  match !leaked with
  | None -> Alcotest.fail "with_pool must pass a pool"
  | Some p ->
    Alcotest.check_raises "pool shut down on exit"
      (Invalid_argument "Ufp_par.Pool: job submitted after shutdown")
      (fun () -> Pool.parallel_for ~pool:(`Pool p) ~n:1 ignore)

let test_with_jobs () =
  Alcotest.(check bool) "jobs 1 is Seq" true
    (Pool.with_jobs 1 (function `Seq -> true | `Pool _ -> false));
  Alcotest.(check bool) "jobs 3 is a pool of 3" true
    (Pool.with_jobs 3 (function `Seq -> false | `Pool p -> Pool.size p = 3));
  (* jobs = 0 resolves to the host's recommended count, which on a
     single-core machine legitimately degenerates to `Seq. *)
  let expected_domains = Domain.recommended_domain_count () in
  Alcotest.(check bool) "jobs 0 uses the recommended count" true
    (Pool.with_jobs 0 (function
      | `Seq -> expected_domains <= 1
      | `Pool p -> Pool.size p = expected_domains))

let test_with_jobs_negative () =
  (* A negative count must raise at the entry point, naming the flag —
     never silently degrade to `Seq. *)
  Alcotest.check_raises "jobs -2 rejected"
    (Invalid_argument
       "--jobs: expected a count >= 0, got -2 (0 = recommended domain count)")
    (fun () -> Pool.with_jobs (-2) (fun _ -> ()));
  Alcotest.check_raises "jobs -1 rejected"
    (Invalid_argument
       "--jobs: expected a count >= 0, got -1 (0 = recommended domain count)")
    (fun () -> Pool.with_jobs (-1) (fun _ -> ()))

let test_jobs_from_env_negative () =
  let prev = Sys.getenv_opt "UFP_JOBS" in
  let restore () =
    (* putenv cannot unset; an empty string is not an integer, so the
       default path stays in force for any later reader. *)
    Unix.putenv "UFP_JOBS" (Option.value prev ~default:"")
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "UFP_JOBS" "-2";
      Alcotest.check_raises "negative UFP_JOBS rejected"
        (Invalid_argument
           "UFP_JOBS: expected a count >= 0, got -2 (0 = recommended domain \
            count)")
        (fun () -> ignore (Pool.jobs_from_env ()));
      (* Garbage that does not parse as an int still falls back to the
         default — only a parsed negative is an error. *)
      Unix.putenv "UFP_JOBS" "three";
      Alcotest.(check int) "unparsable falls back" 5
        (Pool.jobs_from_env ~default:5 ()))

let test_jobs_from_env () =
  (* The suite may itself run under UFP_JOBS (CI exports it), so test
     against whatever the environment actually says. *)
  let expected =
    match Sys.getenv_opt "UFP_JOBS" with
    | None -> 7
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 0 -> j
      | _ -> 7)
  in
  Alcotest.(check int) "env/default honoured" expected
    (Pool.jobs_from_env ~default:7 ())

(* --- the Chase–Lev deque --- *)

let steal_testable =
  let pp fmt = function
    | Deque.Stolen v -> Format.fprintf fmt "Stolen %d" v
    | Deque.Empty -> Format.fprintf fmt "Empty"
    | Deque.Retry -> Format.fprintf fmt "Retry"
  in
  let eq a b =
    match (a, b) with
    | Deque.Stolen x, Deque.Stolen y -> x = y
    | Deque.Empty, Deque.Empty | Deque.Retry, Deque.Retry -> true
    | _ -> false
  in
  Alcotest.testable pp eq

let test_deque_owner_lifo () =
  let q = Deque.create () in
  for i = 1 to 10 do
    Deque.push q i
  done;
  Alcotest.(check int) "size" 10 (Deque.size q);
  for i = 10 downto 1 do
    Alcotest.(check (option int)) "pop order" (Some i) (Deque.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Deque.pop q)

let test_deque_steal_fifo () =
  let q = Deque.create () in
  for i = 1 to 10 do
    Deque.push q i
  done;
  (* Steals consume the opposite (oldest) end, in push order. With no
     concurrent consumer every steal must succeed — Retry only arises
     from losing a race. *)
  for i = 1 to 10 do
    Alcotest.check steal_testable "steal order" (Deque.Stolen i) (Deque.steal q)
  done;
  Alcotest.check steal_testable "drained" Deque.Empty (Deque.steal q)

let test_deque_empty_returns () =
  let q : int Deque.t = Deque.create () in
  Alcotest.(check (option int)) "pop on empty" None (Deque.pop q);
  Alcotest.check steal_testable "steal on empty" Deque.Empty (Deque.steal q);
  Alcotest.(check bool) "is_empty" true (Deque.is_empty q);
  (* The last element goes to exactly one of the two ends. *)
  Deque.push q 7;
  Alcotest.check steal_testable "steal takes the single element"
    (Deque.Stolen 7) (Deque.steal q);
  Alcotest.(check (option int)) "pop then finds nothing" None (Deque.pop q);
  Alcotest.check steal_testable "steal then finds nothing" Deque.Empty
    (Deque.steal q)

let test_deque_mixed_ends () =
  let q = Deque.create () in
  List.iter (Deque.push q) [ 1; 2; 3 ];
  Alcotest.check steal_testable "oldest stolen" (Deque.Stolen 1) (Deque.steal q);
  Alcotest.(check (option int)) "newest popped" (Some 3) (Deque.pop q);
  Deque.push q 4;
  Alcotest.check steal_testable "FIFO continues" (Deque.Stolen 2)
    (Deque.steal q);
  Alcotest.(check (option int)) "LIFO continues" (Some 4) (Deque.pop q);
  Alcotest.(check (option int)) "drained" None (Deque.pop q)

let test_deque_growth () =
  (* Start at the minimum capacity and push two orders of magnitude
     past it: the owner must grow transparently and preserve both
     orders across the copies. *)
  let q = Deque.create ~capacity:2 () in
  for i = 0 to 299 do
    Deque.push q i
  done;
  for i = 0 to 99 do
    Alcotest.check steal_testable "front intact after growth"
      (Deque.Stolen i) (Deque.steal q)
  done;
  for i = 299 downto 100 do
    Alcotest.(check (option int)) "back intact after growth" (Some i)
      (Deque.pop q)
  done;
  Alcotest.(check bool) "empty again" true (Deque.is_empty q)

(* --- the work-stealing scheduler on a real pool --- *)

let test_static_matches_init () =
  (* The fixed-chunk baseline keeps the same exactly-once semantics. *)
  let pool = `Pool (Lazy.force pool3) in
  let n = 500 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Pool.parallel_for_static ~pool ~chunk:7 ~n (fun i -> Atomic.incr hits.(i));
  Array.iteri
    (fun i h ->
      if Atomic.get h <> 1 then
        Alcotest.failf "static: index %d ran %d times" i (Atomic.get h))
    hits

let test_skewed_exactly_once () =
  (* One index ~100x more expensive than the rest: the work-stealing
     path must still run every index exactly once while thieves peel
     the cheap tail off the loaded executor's deque. *)
  let pool = `Pool (Lazy.force pool3) in
  let n = 400 in
  let sink = Atomic.make 0.0 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  let spin rounds =
    let acc = ref 0.0 in
    for k = 1 to rounds do
      acc := !acc +. sin (float_of_int k)
    done;
    !acc
  in
  Pool.parallel_for_dynamic ~pool ~grain:8 ~n (fun i ->
      let cost = if i = 0 then 20_000 else 200 in
      let v = spin cost in
      Atomic.incr hits.(i);
      (* Keep the float work observable so it cannot be dead-code
         eliminated. *)
      if v > 1e9 then Atomic.set sink v);
  Array.iteri
    (fun i h ->
      if Atomic.get h <> 1 then
        Alcotest.failf "skewed: index %d ran %d times" i (Atomic.get h))
    hits

(* The 3-domain QCheck hammer: every submitted thunk runs exactly
   once, witnessed twice over — per-task Atomic slots, and the
   domain-safe Ufp_obs counter the tasks hammer concurrently. *)
let qcheck_submit_exactly_once =
  QCheck.Test.make ~count:40 ~name:"submit runs every task exactly once"
    QCheck.(int_range 1 200)
    (fun n ->
      let c = Metrics.counter "test.par_submit" in
      let before = Metrics.value c in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let tasks =
        Array.init n (fun i ->
            fun () ->
             Metrics.incr c;
             Atomic.incr hits.(i))
      in
      Pool.submit ~pool:(`Pool (Lazy.force pool3)) tasks;
      Array.iteri
        (fun i h ->
          if Atomic.get h <> 1 then
            QCheck.Test.fail_reportf "task %d ran %d times" i (Atomic.get h))
        hits;
      if Metrics.value c - before <> n then
        QCheck.Test.fail_reportf "counter says %d runs, wanted %d"
          (Metrics.value c - before) n;
      true)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "par"
    [
      ( "pool",
        [
          tc "create validates" `Quick test_create_invalid;
          tc "size" `Quick test_size;
          tc "mapi matches Array.init" `Quick test_mapi_matches_init;
          tc "mapi floats bitwise" `Quick test_mapi_floats_bitwise;
          tc "each index exactly once" `Quick test_for_exactly_once;
          tc "reuse across jobs" `Quick test_reuse_across_jobs;
          tc "back-to-back jobs quiesce" `Quick test_back_to_back_jobs;
          tc "nested submission rejected" `Quick test_nested_submission_rejected;
          tc "worker-less pool" `Quick test_worker_less_pool;
          tc "empty job" `Quick test_empty_job;
          tc "exception propagates" `Quick test_exception_propagates;
          tc "sequential default" `Quick test_seq_default;
          tc "shutdown" `Quick test_shutdown_rejects_jobs;
        ] );
      ( "deque",
        [
          tc "owner pop is LIFO" `Quick test_deque_owner_lifo;
          tc "steal is FIFO" `Quick test_deque_steal_fifo;
          tc "empty returns" `Quick test_deque_empty_returns;
          tc "mixed ends" `Quick test_deque_mixed_ends;
          tc "growth preserves both orders" `Quick test_deque_growth;
        ] );
      ( "work-stealing",
        [
          tc "static baseline exactly once" `Quick test_static_matches_init;
          tc "skewed workload exactly once" `Quick test_skewed_exactly_once;
          QCheck_alcotest.to_alcotest qcheck_submit_exactly_once;
        ] );
      ( "conveniences",
        [
          tc "with_pool cleans up" `Quick test_with_pool_cleans_up;
          tc "with_jobs" `Quick test_with_jobs;
          tc "with_jobs rejects negatives" `Quick test_with_jobs_negative;
          tc "jobs_from_env" `Quick test_jobs_from_env;
          tc "jobs_from_env rejects negatives" `Quick
            test_jobs_from_env_negative;
        ] );
    ]
