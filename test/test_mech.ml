(* Tests for Ufp_mech: single_param, ufp_mechanism, muca_mechanism,
   monotonicity. *)

module Graph = Ufp_graph.Graph
module Gen = Ufp_graph.Generators
module Request = Ufp_instance.Request
module Instance = Ufp_instance.Instance
module Solution = Ufp_instance.Solution
module Workloads = Ufp_instance.Workloads
module Bounded_ufp = Ufp_core.Bounded_ufp
module Core_baselines = Ufp_core.Baselines
module Auction = Ufp_auction.Auction
module Bounded_muca = Ufp_auction.Bounded_muca
module Single_param = Ufp_mech.Single_param
module Ufp_mechanism = Ufp_mech.Ufp_mechanism
module Muca_mechanism = Ufp_mech.Muca_mechanism
module Monotonicity = Ufp_mech.Monotonicity
module Rng = Ufp_prelude.Rng
module Float_tol = Ufp_prelude.Float_tol
module Metrics = Ufp_obs.Metrics
module Pool = Ufp_par.Pool

let check_float = Alcotest.(check (float 2e-3))

(* One shared 2-domain pool for the parallel-payments laws (spawning
   per QCheck iteration would dominate the suite on small hosts). *)
let law_pool = lazy (Pool.create ~domains:2 ())

let () =
  at_exit (fun () ->
      if Lazy.is_val law_pool then Pool.shutdown (Lazy.force law_pool))

(* --- Single_param on a toy second-price auction ---

   Instance = array of declared values; one item; the winner is the
   unique highest bidder. This is monotone and its critical value is
   the second-highest declaration, so every payment is predictable. *)

let toy_model : float array Single_param.model =
  {
    Single_param.n_agents = Array.length;
    get_value = (fun vs i -> vs.(i));
    set_value =
      (fun vs i v ->
        let vs = Array.copy vs in
        vs.(i) <- v;
        vs);
    winners =
      (fun vs ->
        let best = ref 0 in
        Array.iteri (fun i v -> if v > vs.(!best) then best := i) vs;
        Array.mapi (fun i _ -> i = !best) vs);
  }

let test_toy_critical_value () =
  let vs = [| 3.0; 7.0; 5.0 |] in
  (match Single_param.critical_value toy_model vs ~agent:1 with
  | Some c -> check_float "second price" 5.0 c
  | None -> Alcotest.fail "winner must have a critical value");
  (* A loser that can win by bidding above the maximum. *)
  (match Single_param.critical_value toy_model vs ~agent:2 with
  | Some c -> check_float "losers critical is the max" 7.0 c
  | None -> Alcotest.fail "agent 2 could win at v_hi")

let test_toy_known_winner_small_v_hi () =
  (* Regression: with [known_winner:true] the warm bracket must start
     at the declaration, not [min v_hi declared]. A custom [v_hi]
     below the winner's declaration certifies nothing (monotonicity
     extends the declaration certificate upward only); the old cap
     made every probe lose, so the bisection silently converged onto
     ~v_hi and undercharged a winner whose critical value lies in
     (v_hi, declared]. Here the critical value is 5 and v_hi = 2. *)
  let vs = [| 3.0; 7.0; 5.0 |] in
  (match
     Single_param.critical_value ~v_hi:2.0 ~known_winner:true toy_model vs
       ~agent:1
   with
  | Some c -> check_float "critical value ignores the low ceiling" 5.0 c
  | None -> Alcotest.fail "known winner must have a critical value");
  (* Same protection one level up: warm payments with a low ceiling
     still charge the true critical value. *)
  let pay = Single_param.payments ~v_hi:2.0 ~warm:`Declared toy_model vs in
  check_float "warm payment ignores the low ceiling" 5.0 pay.(1)

let test_toy_payments () =
  let vs = [| 3.0; 7.0; 5.0 |] in
  let pay = Single_param.payments toy_model vs in
  check_float "loser pays nothing" 0.0 pay.(0);
  check_float "winner pays second price" 5.0 pay.(1);
  check_float "loser pays nothing" 0.0 pay.(2)

let test_toy_utility () =
  let vs = [| 3.0; 7.0; 5.0 |] in
  (* Agent 1, true value 7: utility = 7 - 5 = 2 at any winning bid. *)
  check_float "truthful utility" 2.0
    (Single_param.utility toy_model vs ~agent:1 ~true_value:7.0
       ~declared_value:7.0);
  check_float "overbid same utility" 2.0
    (Single_param.utility toy_model vs ~agent:1 ~true_value:7.0
       ~declared_value:100.0);
  check_float "losing bid zero" 0.0
    (Single_param.utility toy_model vs ~agent:1 ~true_value:7.0
       ~declared_value:1.0)

let test_toy_spot_check () =
  let vs = [| 3.0; 7.0; 5.0 |] in
  let sc =
    (* The slack must dominate the bisection error, which scales with
       the default v_hi (4 x the declaration total). *)
    Single_param.spot_check_truthfulness ~slack:Float_tol.report_slack toy_model vs ~agent:1
      ~misreports:[ 0.5; 5.5; 6.0; 20.0; 100.0 ]
  in
  Alcotest.(check bool) "no beating misreport" true
    (sc.Single_param.best_misreport = None);
  check_float "truthful utility" 2.0 sc.Single_param.truthful_utility

let test_toy_is_winner () =
  let vs = [| 3.0; 7.0; 5.0 |] in
  Alcotest.(check bool) "agent 1 wins" true (Single_param.is_winner toy_model vs 1);
  Alcotest.(check bool) "agent 0 loses" false (Single_param.is_winner toy_model vs 0)

(* --- UFP mechanism --- *)

let grid_instance ?(capacity = 12.0) ?(count = 8) seed =
  let rng = Rng.create seed in
  let g = Gen.grid ~rows:3 ~cols:3 ~capacity in
  Instance.create g (Workloads.random_requests rng g ~count ())

let algo = Bounded_ufp.solve ~eps:0.3

let test_ufp_winners () =
  let inst = grid_instance 3 in
  let won = Ufp_mechanism.winners algo inst in
  let sol = algo inst in
  List.iter
    (fun i -> Alcotest.(check bool) "winner flagged" true won.(i))
    (Solution.selected sol);
  Alcotest.(check int) "winner count" (List.length sol)
    (Array.fold_left (fun acc w -> if w then acc + 1 else acc) 0 won)

let test_ufp_payments_bounded_by_value () =
  let inst = grid_instance 5 in
  let pay = Ufp_mechanism.payments algo inst in
  let won = Ufp_mechanism.winners algo inst in
  Array.iteri
    (fun i p ->
      if won.(i) then begin
        Alcotest.(check bool) "payment nonnegative" true (p >= -.1e-9);
        Alcotest.(check bool) "payment <= declared value" true
          (p <= (Instance.request inst i).Request.value +. Float_tol.loose_check_eps)
      end
      else check_float "losers pay nothing" 0.0 p)
    pay

let test_ufp_critical_value_is_threshold () =
  let inst = grid_instance 7 in
  let model = Ufp_mechanism.model algo in
  let won = Ufp_mechanism.winners algo inst in
  let agent =
    match Array.to_list won |> List.mapi (fun i w -> (i, w))
          |> List.find_opt snd
    with
    | Some (i, _) -> i
    | None -> Alcotest.fail "no winner"
  in
  match Single_param.critical_value ~rel_tol:Float_tol.fine_rel_tol model inst ~agent with
  | None -> Alcotest.fail "winner has a critical value"
  | Some c ->
    let wins v =
      let r = Instance.request inst agent in
      let inst' =
        Instance.with_request inst agent
          (Request.with_type r ~demand:r.Request.demand ~value:v)
      in
      (Ufp_mechanism.winners algo inst').(agent)
    in
    Alcotest.(check bool) "wins just above" true (wins (c *. 1.01 +. Float_tol.loose_check_eps));
    if c > Float_tol.spot_check_slack then
      Alcotest.(check bool) "loses well below" false (wins (c /. 2.0))

let test_ufp_truthfulness_table () =
  let inst = grid_instance ~capacity:10.0 ~count:6 11 in
  let won = Ufp_mechanism.winners algo inst in
  let agent = ref (-1) in
  Array.iteri (fun i w -> if w && !agent = -1 then agent := i) won;
  if !agent >= 0 then begin
    let r = Instance.request inst !agent in
    let d = r.Request.demand and v = r.Request.value in
    let misreports =
      [
        (d, v /. 2.0); (d, v *. 2.0); (d, v *. 5.0);
        (d /. 2.0, v); (d /. 2.0, v *. 2.0);
        (Float.min 1.0 (d *. 1.5), v); (d, v /. 10.0);
      ]
    in
    let outcomes, truthful =
      Ufp_mechanism.truthfulness_table ~rel_tol:Float_tol.payment_rel_tol algo inst ~agent:!agent
        ~misreports
    in
    List.iter
      (fun (o : Ufp_mechanism.misreport_outcome) ->
        Alcotest.(check bool)
          (Printf.sprintf "misreport (%g, %g) does not beat truth"
             (fst o.Ufp_mechanism.declared)
             (snd o.Ufp_mechanism.declared))
          true
          (o.Ufp_mechanism.outcome_utility <= truthful +. Float_tol.report_slack))
      outcomes
  end

let test_ufp_utility_underdeclared_demand_hurts () =
  (* Winning with declared demand below the true demand yields a
     useless allocation: gross value 0, payment still due. *)
  let g = Gen.grid ~rows:2 ~cols:2 ~capacity:5.0 in
  let inst =
    Instance.create g
      [|
        Request.make ~src:0 ~dst:3 ~demand:0.9 ~value:4.0;
        Request.make ~src:0 ~dst:3 ~demand:0.5 ~value:1.0;
      |]
  in
  let u_truth =
    Ufp_mechanism.utility algo inst ~agent:0 ~true_demand:0.9 ~true_value:4.0
      ~declared_demand:0.9 ~declared_value:4.0
  in
  let u_lie =
    Ufp_mechanism.utility algo inst ~agent:0 ~true_demand:0.9 ~true_value:4.0
      ~declared_demand:0.3 ~declared_value:4.0
  in
  Alcotest.(check bool) "truth at least as good" true (u_truth >= u_lie -. Float_tol.loose_check_eps);
  Alcotest.(check bool) "lying yields no positive gain" true (u_lie <= Float_tol.loose_check_eps)

(* --- MUCA mechanism --- *)

let random_auction seed =
  let rng = Rng.create seed in
  let bid _ =
    Auction.make_bid
      ~bundle:(Rng.sample_without_replacement rng 3 8)
      ~value:(Rng.float_in rng 0.5 3.0)
  in
  Auction.create ~multiplicities:(Array.make 8 5) (Array.init 10 bid)

let muca_algo = Bounded_muca.solve ~eps:0.3

let test_muca_payments () =
  let a = random_auction 3 in
  let pay = Muca_mechanism.payments muca_algo a in
  let won = Muca_mechanism.winners muca_algo a in
  Array.iteri
    (fun i p ->
      if won.(i) then
        Alcotest.(check bool) "payment in [0, v]" true
          (p >= -.1e-9 && p <= (Auction.bid a i).Auction.value +. Float_tol.loose_check_eps)
      else check_float "loser pays 0" 0.0 p)
    pay

let test_muca_spot_check () =
  let a = random_auction 5 in
  let won = Muca_mechanism.winners muca_algo a in
  let agent = ref (-1) in
  Array.iteri (fun i w -> if w && !agent = -1 then agent := i) won;
  if !agent >= 0 then begin
    let v = (Auction.bid a !agent).Auction.value in
    let sc =
      Single_param.spot_check_truthfulness
        (Muca_mechanism.model muca_algo)
        a ~agent:!agent
        ~misreports:[ v /. 4.0; v /. 2.0; v *. 1.5; v *. 4.0; v *. 20.0 ]
    in
    Alcotest.(check bool) "no beating misreport" true
      (sc.Single_param.best_misreport = None)
  end

let test_muca_bundle_misreport () =
  (* Declaring a superset bundle: winning is not guaranteed, and when
     it loses the utility is 0; truthful utility is nonnegative. *)
  let a = random_auction 9 in
  let won = Muca_mechanism.winners muca_algo a in
  let agent = ref (-1) in
  Array.iteri (fun i w -> if w && !agent = -1 then agent := i) won;
  if !agent >= 0 then begin
    let b = Auction.bid a !agent in
    let truthful =
      Muca_mechanism.utility muca_algo a ~agent:!agent
        ~true_bundle:b.Auction.bundle ~true_value:b.Auction.value
        ~declared_bundle:b.Auction.bundle ~declared_value:b.Auction.value
    in
    Alcotest.(check bool) "truthful utility nonnegative" true
      (truthful >= -.1e-4);
    (* Misreport a smaller bundle that no longer covers the true one:
       gross value drops to 0, so utility cannot be positive. *)
    match b.Auction.bundle with
    | _ :: rest when rest <> [] ->
      let u =
        Muca_mechanism.utility muca_algo a ~agent:!agent
          ~true_bundle:b.Auction.bundle ~true_value:b.Auction.value
          ~declared_bundle:rest ~declared_value:b.Auction.value
      in
      Alcotest.(check bool) "partial bundle yields no gain" true (u <= Float_tol.loose_check_eps)
    | _ -> ()
  end

(* --- Monotonicity --- *)

let test_monotone_bounded_ufp () =
  for seed = 1 to 3 do
    let inst = grid_instance ~capacity:10.0 ~count:10 seed in
    Alcotest.(check bool)
      (Printf.sprintf "no violation seed %d" seed)
      true
      (Monotonicity.check_ufp ~trials:60 ~seed (Bounded_ufp.solve ~eps:0.3) inst
      = None)
  done

let test_monotone_threshold_pd () =
  let inst = grid_instance ~capacity:10.0 ~count:10 4 in
  Alcotest.(check bool) "threshold-pd monotone" true
    (Monotonicity.check_ufp ~trials:60 ~seed:4
       (Core_baselines.threshold_pd ~eps:0.3)
       inst
    = None)

let test_monotone_greedy_density () =
  let inst = grid_instance ~capacity:6.0 ~count:12 6 in
  Alcotest.(check bool) "greedy density monotone" true
    (Monotonicity.check_ufp ~trials:60 ~seed:6 Core_baselines.greedy_by_density
       inst
    = None)

let test_monotone_muca () =
  for seed = 1 to 3 do
    let a = random_auction (seed + 20) in
    Alcotest.(check bool)
      (Printf.sprintf "MUCA no violation seed %d" seed)
      true
      (Monotonicity.check_muca ~trials:60 ~seed muca_algo a = None)
  done

let test_monotonicity_checker_detects_violations () =
  (* An artificial anti-monotone rule: win iff the declared value lies
     below the mean — raising your value can make you lose. *)
  let silly inst =
    let n = Instance.n_requests inst in
    let mean = Instance.total_value inst /. float_of_int n in
    let sol = ref [] in
    for i = n - 1 downto 0 do
      let r = Instance.request inst i in
      if r.Request.value <= mean then
        (* Route on a fewest-hop path ignoring capacities: fine for the
           checker, which only looks at selection. *)
        match
          Ufp_graph.Dijkstra.shortest_path (Instance.graph inst)
            ~weight:(fun _ -> 1.0) ~src:r.Request.src ~dst:r.Request.dst
        with
        | Some (_, path) -> sol := { Solution.request = i; path } :: !sol
        | None -> ()
    done;
    !sol
  in
  let inst = grid_instance ~capacity:10.0 ~count:10 8 in
  match Monotonicity.check_ufp ~trials:200 ~seed:8 silly inst with
  | Some v ->
    Alcotest.(check bool) "violation has improved type" true
      (fst v.Monotonicity.improved_type <= fst v.Monotonicity.original_type +. Float_tol.check_eps
      && snd v.Monotonicity.improved_type >= snd v.Monotonicity.original_type -. Float_tol.check_eps)
  | None -> Alcotest.fail "expected a monotonicity violation"

let test_monotonicity_no_winners () =
  (* The empty algorithm has no winners, hence no violations. *)
  let inst = grid_instance ~capacity:10.0 ~count:5 10 in
  Alcotest.(check bool) "vacuously monotone" true
    (Monotonicity.check_ufp ~trials:20 ~seed:1 (fun _ -> []) inst = None)

(* --- VCG --- *)

module Vcg = Ufp_mech.Vcg

let chain_instance () =
  (* Chain 0 -> 1 -> 2, capacities 1: request A (0->2, v=2) vs
     B (0->1, v=1) + C (1->2, v=1). The optimum takes A (ties broken
     towards A by branch order); removing A leaves B + C worth 2, so
     A's Clarke payment is 2 - (2 - 2) = 2. *)
  let g = Ufp_graph.Graph.create ~directed:true ~n:3 in
  ignore (Ufp_graph.Graph.add_edge g ~u:0 ~v:1 ~capacity:1.0);
  ignore (Ufp_graph.Graph.add_edge g ~u:1 ~v:2 ~capacity:1.0);
  Instance.create g
    [|
      Request.make ~src:0 ~dst:2 ~demand:1.0 ~value:2.0;
      Request.make ~src:0 ~dst:1 ~demand:1.0 ~value:1.0;
      Request.make ~src:1 ~dst:2 ~demand:1.0 ~value:1.0;
    |]

let test_vcg_chain () =
  let inst = chain_instance () in
  let out = Vcg.ufp inst in
  check_float "welfare" 2.0 out.Vcg.welfare;
  (* Whichever optimum was chosen, winners pay their full externality
     here (the losing side is worth the same). *)
  List.iter
    (fun i ->
      let v = (Instance.request inst i).Request.value in
      Alcotest.(check bool) "pays externality" true
        (out.Vcg.payments.(i) >= 0.0 && out.Vcg.payments.(i) <= v +. Float_tol.check_eps))
    (Solution.selected out.Vcg.allocation);
  (* Losers pay nothing. *)
  Array.iteri
    (fun i p ->
      if not (List.mem i (Solution.selected out.Vcg.allocation)) then
        check_float "loser pays 0" 0.0 p)
    out.Vcg.payments

let test_vcg_no_competition_free () =
  (* A single request with ample capacity pays nothing. *)
  let g = Ufp_graph.Graph.create ~directed:true ~n:2 in
  ignore (Ufp_graph.Graph.add_edge g ~u:0 ~v:1 ~capacity:5.0);
  let inst =
    Instance.create g [| Request.make ~src:0 ~dst:1 ~demand:1.0 ~value:3.0 |]
  in
  let out = Vcg.ufp inst in
  check_float "free" 0.0 out.Vcg.payments.(0);
  check_float "welfare" 3.0 out.Vcg.welfare

let test_vcg_truthful_spot_check () =
  (* VCG over the exact allocation is truthful: misreporting the value
     never beats truth. *)
  let inst = grid_instance ~capacity:3.0 ~count:6 13 in
  let out = Vcg.ufp inst in
  match Solution.selected out.Vcg.allocation with
  | [] -> Alcotest.fail "expected winners"
  | w :: _ ->
    let r = Instance.request inst w in
    let v_true = r.Request.value in
    let utility declared =
      let inst' =
        Instance.with_request inst w
          (Request.with_type r ~demand:r.Request.demand ~value:declared)
      in
      let out' = Vcg.ufp inst' in
      if List.mem w (Solution.selected out'.Vcg.allocation) then
        v_true -. out'.Vcg.payments.(w)
      else 0.0
    in
    let u_truth = utility v_true in
    List.iter
      (fun factor ->
        Alcotest.(check bool)
          (Printf.sprintf "misreport x%g does not beat truth" factor)
          true
          (utility (v_true *. factor) <= u_truth +. Float_tol.loose_check_eps))
      [ 0.25; 0.5; 0.9; 1.5; 3.0; 10.0 ]

let test_vcg_equals_critical_value () =
  (* For a single-parameter welfare-maximising rule, Clarke payments
     coincide with critical values — the two payment codepaths must
     agree. *)
  for seed = 1 to 4 do
    let inst = grid_instance ~capacity:3.0 ~count:5 (seed + 60) in
    let exact_algo inst = Ufp_lp.Exact.solve inst in
    let out = Vcg.ufp inst in
    let model = Ufp_mechanism.model exact_algo in
    List.iter
      (fun w ->
        match Single_param.critical_value ~rel_tol:Float_tol.fine_rel_tol model inst ~agent:w with
        | Some crit ->
          Alcotest.(check (float Float_tol.report_slack))
            (Printf.sprintf "VCG = critical (seed %d, agent %d)" seed w)
            out.Vcg.payments.(w) crit
        | None -> Alcotest.fail "winner must have a critical value")
      (Solution.selected out.Vcg.allocation)
  done

(* Companion to [test_critical_value_accuracy_large_instance] on the
   hoisted VCG path (PR 9): a 5000-value request inflates the shared
   [default_v_hi] ceiling to ~2e4, so any bisection tolerance that
   scales with the ceiling (rather than the answer) or any drift in
   the hoisted-v_hi plumbing shows up as a payment gap here. *)
let test_vcg_payments_value_5000 () =
  let inst = grid_instance ~capacity:3.0 ~count:5 63 in
  let r = Instance.request inst 0 in
  let inst =
    Instance.with_request inst 0
      (Request.with_type r ~demand:r.Request.demand ~value:5000.0)
  in
  let out = Vcg.ufp inst in
  let winners = Solution.selected out.Vcg.allocation in
  Alcotest.(check bool) "the 5000-value request wins" true
    (List.mem 0 winners);
  let cp = Vcg.critical_payments ~rel_tol:Float_tol.fine_rel_tol inst in
  List.iter
    (fun w ->
      Alcotest.(check (float Float_tol.report_slack))
        (Printf.sprintf "VCG = hoisted critical (agent %d)" w)
        out.Vcg.payments.(w) cp.(w))
    winners

let test_vcg_muca () =
  let a =
    Auction.create ~multiplicities:[| 1; 1 |]
      [|
        Auction.make_bid ~bundle:[ 0; 1 ] ~value:2.5;
        Auction.make_bid ~bundle:[ 0 ] ~value:2.0;
        Auction.make_bid ~bundle:[ 1 ] ~value:1.0;
      |]
  in
  let out = Vcg.muca a in
  check_float "welfare 3" 3.0 out.Vcg.muca_welfare;
  Alcotest.(check (list int)) "winners 1,2" [ 1; 2 ]
    (List.sort compare out.Vcg.muca_allocation);
  (* Bid 1's externality: without it the optimum is 2.5 (the bundle
     bid), with it the others get 1.0 -> pays 2.5 - 1.0 = 1.5. *)
  check_float "bid 1 pays" 1.5 out.Vcg.muca_payments.(1);
  (* Bid 2 symmetric: 2.5 - 2.0 = 0.5. *)
  check_float "bid 2 pays" 0.5 out.Vcg.muca_payments.(2);
  check_float "loser pays 0" 0.0 out.Vcg.muca_payments.(0)

(* Regression for the bisection stopping rule: convergence must be
   measured against the critical value, not the starting ceiling.
   With 5000 extra unit bidders, default_v_hi is ~2e4, so the old
   [rel_tol * v_hi] stop left an absolute error of ~2e-2 on a
   critical value of 5.0; the answer-relative rule keeps it at
   ~5e-6. *)
let test_critical_value_accuracy_large_instance () =
  let n = 5000 in
  let vs = Array.make (n + 2) 1.0 in
  vs.(0) <- 10.0;
  vs.(1) <- 5.0;
  match Single_param.critical_value toy_model vs ~agent:0 with
  | None -> Alcotest.fail "top bidder must have a critical value"
  | Some c ->
    if Float.abs (c -. 5.0) > Float_tol.coarse_slack then
      Alcotest.failf
        "critical value %.8f is off by %.2e (> %.0e): the bisection \
         tolerance is scaling with v_hi again"
        c
        (Float.abs (c -. 5.0))
        Float_tol.coarse_slack

(* --- QCheck --- *)

let array_bitwise_equal a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if not (Float.equal x b.(i)) then ok := false) a;
  !ok

(* The Ufp_par determinism contract, end to end: fanning the
   per-winner bisections out changes neither a single payment bit nor
   the total probe count. *)
let m_probes = Metrics.counter "mech.payment_probes"

let probes_during f =
  let before = Metrics.value m_probes in
  let result = f () in
  (result, Metrics.value m_probes - before)

let qcheck_parallel_payments_bitwise_ufp =
  QCheck.Test.make ~name:"UFP payments: parallel bitwise equals sequential"
    ~count:10 QCheck.small_int (fun seed ->
      let inst = grid_instance ~capacity:10.0 ~count:8 (seed + 60) in
      let seq, probes_seq =
        probes_during (fun () -> Ufp_mechanism.payments algo inst)
      in
      let par, probes_par =
        probes_during (fun () ->
            Ufp_mechanism.payments ~pool:(`Pool (Lazy.force law_pool)) algo
              inst)
      in
      array_bitwise_equal seq par && probes_seq = probes_par)

let qcheck_parallel_payments_bitwise_muca =
  QCheck.Test.make ~name:"MUCA payments: parallel bitwise equals sequential"
    ~count:10 QCheck.small_int (fun seed ->
      let a = random_auction (seed + 80) in
      let seq, probes_seq =
        probes_during (fun () -> Muca_mechanism.payments muca_algo a)
      in
      let par, probes_par =
        probes_during (fun () ->
            Muca_mechanism.payments ~pool:(`Pool (Lazy.force law_pool))
              muca_algo a)
      in
      array_bitwise_equal seq par && probes_seq = probes_par)

let qcheck_parallel_vcg_bitwise =
  QCheck.Test.make ~name:"VCG payments: parallel bitwise equals sequential"
    ~count:6 QCheck.small_int (fun seed ->
      let inst = grid_instance ~capacity:10.0 ~count:5 (seed + 100) in
      let seq = Vcg.ufp inst in
      let par = Vcg.ufp ~pool:(`Pool (Lazy.force law_pool)) inst in
      array_bitwise_equal seq.Vcg.payments par.Vcg.payments)

(* Warm-started brackets (PR 9). Warm and cold bisections visit
   different midpoints, so equality is within tolerance, not bitwise:
   each side's estimate exceeds the true critical value by at most
   [rel_tol * max 1.0 hi], so the two differ by at most twice that
   (doubled again below for slop). The probe claim IS deterministic,
   though: the warm bracket [0, declared] is at least 4x tighter than
   the cold [0, 4 * total] and skips the ceiling probe, so any
   instance with a winner must save probes. *)
let warm_cold_agree inst seq_cold warm probes_cold probes_warm ~has_winner
    ~label =
  let tol p =
    4.0 *. Float_tol.payment_rel_tol *. Float.max 1.0 (Float.abs p)
  in
  Array.iteri
    (fun i c ->
      if Float.abs (c -. warm.(i)) > tol c then
        QCheck.Test.fail_reportf "%s: agent %d warm %.9g vs cold %.9g" label i
          warm.(i) c)
    seq_cold;
  if has_winner && probes_warm >= probes_cold then
    QCheck.Test.fail_reportf "%s: warm used %d probes, cold %d" label
      probes_warm probes_cold;
  ignore inst;
  true

let qcheck_warm_equals_cold_ufp =
  QCheck.Test.make
    ~name:"UFP payments: warm-started equals cold within tolerance" ~count:10
    QCheck.small_int (fun seed ->
      let inst = grid_instance ~capacity:10.0 ~count:8 (seed + 60) in
      let cold, probes_cold =
        probes_during (fun () ->
            Ufp_mechanism.payments ~warm:`Cold algo inst)
      in
      let warm, probes_warm =
        probes_during (fun () ->
            Ufp_mechanism.payments ~warm:`Declared algo inst)
      in
      let has_winner = Array.exists (fun p -> p > 0.0) cold in
      warm_cold_agree inst cold warm probes_cold probes_warm ~has_winner
        ~label:"declared")

let qcheck_warm_hinted_equals_cold_ufp =
  QCheck.Test.make
    ~name:"UFP payments: forward-solve hints equal cold within tolerance"
    ~count:10 QCheck.small_int (fun seed ->
      let inst = grid_instance ~capacity:10.0 ~count:8 (seed + 60) in
      let run = Bounded_ufp.run ~eps:0.3 inst in
      let hints = Ufp_mechanism.acceptance_thresholds inst run in
      let cold, probes_cold =
        probes_during (fun () ->
            Ufp_mechanism.payments ~warm:`Cold algo inst)
      in
      let warm, probes_warm =
        probes_during (fun () ->
            Ufp_mechanism.payments
              ~warm:(`Hinted (fun i -> hints.(i)))
              algo inst)
      in
      let has_winner = Array.exists (fun p -> p > 0.0) cold in
      warm_cold_agree inst cold warm probes_cold probes_warm ~has_winner
        ~label:"hinted")

(* The seq/par bitwise law must also hold on the warm path: warm mode
   changes which probes run, never which domain runs them. *)
let qcheck_parallel_warm_bitwise_ufp =
  QCheck.Test.make
    ~name:"UFP payments: warm parallel bitwise equals warm sequential"
    ~count:10 QCheck.small_int (fun seed ->
      let inst = grid_instance ~capacity:10.0 ~count:8 (seed + 60) in
      let seq, probes_seq =
        probes_during (fun () ->
            Ufp_mechanism.payments ~warm:`Declared algo inst)
      in
      let par, probes_par =
        probes_during (fun () ->
            Ufp_mechanism.payments ~warm:`Declared
              ~pool:(`Pool (Lazy.force law_pool)) algo inst)
      in
      array_bitwise_equal seq par && probes_seq = probes_par)

let qcheck_toy_truthful =
  QCheck.Test.make ~name:"second-price toy mechanism is truthful" ~count:100
    QCheck.(triple (float_range 0.1 10.0) (float_range 0.1 10.0)
              (float_range 0.1 10.0))
    (fun (a, b, misreport) ->
      let vs = [| a; b |] in
      let u_truth =
        Single_param.utility toy_model vs ~agent:0 ~true_value:a
          ~declared_value:a
      in
      let u_lie =
        Single_param.utility toy_model vs ~agent:0 ~true_value:a
          ~declared_value:misreport
      in
      u_lie <= u_truth +. Float_tol.report_slack)

let qcheck_payments_below_value =
  QCheck.Test.make ~name:"UFP critical payments never exceed declarations"
    ~count:15 QCheck.small_int (fun seed ->
      let inst = grid_instance ~capacity:10.0 ~count:6 (seed + 40) in
      let pay = Ufp_mechanism.payments ~rel_tol:Float_tol.spot_check_slack algo inst in
      let ok = ref true in
      Array.iteri
        (fun i p ->
          if p > (Instance.request inst i).Request.value +. Float_tol.spot_check_slack then ok := false)
        pay;
      !ok)

let () =
  Alcotest.run "mech"
    [
      ( "single-param",
        [
          Alcotest.test_case "critical value" `Quick test_toy_critical_value;
          Alcotest.test_case "known winner below custom v_hi" `Quick
            test_toy_known_winner_small_v_hi;
          Alcotest.test_case "payments" `Quick test_toy_payments;
          Alcotest.test_case "utility" `Quick test_toy_utility;
          Alcotest.test_case "spot check" `Quick test_toy_spot_check;
          Alcotest.test_case "is_winner" `Quick test_toy_is_winner;
          Alcotest.test_case "accuracy on large instances" `Quick
            test_critical_value_accuracy_large_instance;
        ] );
      ( "ufp-mechanism",
        [
          Alcotest.test_case "winners" `Quick test_ufp_winners;
          Alcotest.test_case "payments bounded" `Quick test_ufp_payments_bounded_by_value;
          Alcotest.test_case "critical threshold" `Quick
            test_ufp_critical_value_is_threshold;
          Alcotest.test_case "truthfulness table" `Quick test_ufp_truthfulness_table;
          Alcotest.test_case "underdeclared demand" `Quick
            test_ufp_utility_underdeclared_demand_hurts;
        ] );
      ( "muca-mechanism",
        [
          Alcotest.test_case "payments" `Quick test_muca_payments;
          Alcotest.test_case "spot check" `Quick test_muca_spot_check;
          Alcotest.test_case "bundle misreport" `Quick test_muca_bundle_misreport;
        ] );
      ( "monotonicity",
        [
          Alcotest.test_case "bounded-ufp" `Quick test_monotone_bounded_ufp;
          Alcotest.test_case "threshold-pd" `Quick test_monotone_threshold_pd;
          Alcotest.test_case "greedy density" `Quick test_monotone_greedy_density;
          Alcotest.test_case "muca" `Quick test_monotone_muca;
          Alcotest.test_case "detects violations" `Quick
            test_monotonicity_checker_detects_violations;
          Alcotest.test_case "no winners" `Quick test_monotonicity_no_winners;
        ] );
      ( "vcg",
        [
          Alcotest.test_case "chain" `Quick test_vcg_chain;
          Alcotest.test_case "no competition is free" `Quick
            test_vcg_no_competition_free;
          Alcotest.test_case "truthful spot check" `Quick test_vcg_truthful_spot_check;
          Alcotest.test_case "equals critical value" `Quick
            test_vcg_equals_critical_value;
          Alcotest.test_case "payments at value 5000" `Quick
            test_vcg_payments_value_5000;
          Alcotest.test_case "muca" `Quick test_vcg_muca;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_toy_truthful; qcheck_payments_below_value;
            qcheck_parallel_payments_bitwise_ufp;
            qcheck_parallel_payments_bitwise_muca;
            qcheck_parallel_vcg_bitwise;
            qcheck_warm_equals_cold_ufp;
            qcheck_warm_hinted_equals_cold_ufp;
            qcheck_parallel_warm_bitwise_ufp;
          ] );
    ]
