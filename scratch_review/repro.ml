module Graph = Ufp_graph.Graph
module Dijkstra = Ufp_graph.Dijkstra
module Delta = Ufp_graph.Delta_stepping
module Weight_snapshot = Ufp_graph.Weight_snapshot

let () =
  (* delta = min positive weight = 0.72164698243141179.
     Edge 0->1 has weight 536.1837079465389 = fl(743 * delta):
     int_of_float (w /. delta) = 742, but bucket 742's filter
     rejects it (d < hi is false), so vertex 1 is dropped. *)
  let delta = 0.72164698243141179 in
  let w01 = 536.1837079465389 in
  let n = 4 in
  let g = Graph.create ~directed:true ~n in
  let e01 = Graph.add_edge g ~u:0 ~v:1 ~capacity:1.0 in
  let e02 = Graph.add_edge g ~u:0 ~v:2 ~capacity:1.0 in
  let e13 = Graph.add_edge g ~u:1 ~v:3 ~capacity:1.0 in
  let weight e =
    if e = e01 then w01 else if e = e02 then delta else if e = e13 then 1.0
    else assert false
  in
  let snapshot = Weight_snapshot.build g ~weight in
  let dist_d = Array.make n nan and par_d = Array.make n (-2) in
  let wsd = Dijkstra.create_workspace g in
  Dijkstra.shortest_tree_snapshot_into wsd g ~snapshot ~src:0 ~dist:dist_d ~parent_edge:par_d;
  let dist_s = Array.make n nan and par_s = Array.make n (-2) in
  let wss = Delta.create_workspace g in
  Delta.shortest_tree_snapshot_into wss g ~snapshot ~src:0 ~dist:dist_s ~parent_edge:par_s;
  let bad = ref false in
  for i = 0 to n - 1 do
    let m = Float.compare dist_d.(i) dist_s.(i) <> 0 || par_d.(i) <> par_s.(i) in
    if m then bad := true;
    Printf.printf "v%d dijkstra=%.17g (p=%d)  delta=%.17g (p=%d)%s\n" i
      dist_d.(i) par_d.(i) dist_s.(i) par_s.(i)
      (if m then "   <-- MISMATCH" else "")
  done;
  if !bad then print_endline "RESULT: delta-stepping tree DIFFERS from Dijkstra"
  else print_endline "RESULT: identical"
