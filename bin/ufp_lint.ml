(* ufp-lint: repo-specific float-discipline and determinism linter.

   Walks .ml/.mli sources and enforces the rules documented in
   docs/LINTING.md in two phases: per-file syntactic rules (R0-R6) and
   the whole-program domain-safety analysis (R7 par-shared-mutation,
   R8 domain-unsafe-call) seeded at every Ufp_par.Pool call site.
   Exit codes: 0 clean, 1 violations, 2 driver errors (unreadable or
   unparsable file). *)

module Finding = Ufp_lint.Finding
module Driver = Ufp_lint.Driver

open Cmdliner

let roots_arg =
  let doc = "Source roots (directories or files) to lint." in
  Arg.(value & pos_all string [ "lib"; "bin"; "bench"; "test" ]
       & info [] ~docv:"PATH" ~doc)

let format_arg =
  let doc = "Output format: $(b,text) or $(b,json)." in
  Arg.(
    value
    & opt (enum [ ("text", Driver.Text); ("json", Driver.Json) ]) Driver.Text
    & info [ "format" ] ~docv:"FMT" ~doc)

let rules_arg =
  let parse s =
    match Finding.rule_of_string s with
    | Some r -> Ok r
    | None -> Error (`Msg (Printf.sprintf "unknown rule %S" s))
  in
  let print ppf r = Format.pp_print_string ppf (Finding.rule_id r) in
  let rule_conv = Arg.conv (parse, print) in
  let doc =
    "Comma-separated rules to enforce (ids or slugs); default: all."
  in
  Arg.(
    value
    & opt (list rule_conv) Finding.all_rules
    & info [ "r"; "rules" ] ~docv:"RULES" ~doc)

let list_rules_arg =
  Arg.(value & flag & info [ "list-rules" ] ~doc:"List rules and exit.")

let callgraph_arg =
  let doc =
    "Dump the whole-program call graph (defs, callees, functor-skip \
     warnings) as JSON to $(docv) for debugging the R7/R8 phase."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "callgraph" ] ~docv:"FILE.json" ~doc)

let main roots format rules callgraph_out list_rules =
  if list_rules then begin
    List.iter
      (fun r ->
        Printf.printf "%s %-20s %s\n" (Finding.rule_id r)
          (Finding.rule_name r) (Finding.rule_doc r))
      Finding.all_rules;
    0
  end
  else Driver.run ~format ~rules ?callgraph_out ~roots ()

let cmd =
  let doc = "float-discipline and determinism linter for the UFP repo" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Enforces the tolerance and comparison discipline that the \
         truthfulness argument (Theorem 2.3) depends on.  See \
         docs/LINTING.md for rules and the [@lint.allow] escape hatch.";
    ]
  in
  Cmd.v
    (Cmd.info "ufp-lint" ~doc ~man)
    Term.(
      const main $ roots_arg $ format_arg $ rules_arg $ callgraph_arg
      $ list_rules_arg)

let () = exit (Cmd.eval' cmd)
