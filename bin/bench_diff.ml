(* bench-diff — the perf-trajectory regression gate.

   Loads two BENCH_*.json files (the committed trajectory and a fresh
   run), joins their benchmark rows by id, reports the current/baseline
   ratio per metric, and exits non-zero when any gated metric moved
   past the threshold in its bad direction. This is what finally
   *reads* the trajectory the bench driver has been emitting since
   PR 5: a regression like the one PR 6's stack-overflow fix caught by
   luck now fails CI instead of sailing through.

   Row extraction is schema-aware:
     - a top-level "rows" array (ufp-bench-pr8/1) is self-describing:
       {"id": ..., "value": ..., "better": "lower"|"higher", ...};
     - any other top-level array of objects (the pr5/pr6 schemas) is
       flattened generically: string fields and small integer identity
       fields (scale, edge_factor, requests, trials) name the row, and
       each numeric field becomes a metric whose direction is inferred
       from its name (`*_s`, `*_ns`, `ns_per_run` are lower-better;
       `*teps`, `*speedup` are higher-better; anything else is
       informational and reported but never gated).
   "schema" and "provenance" fields are skipped (the provenance stamp
   — git rev, OCaml version, core count — is printed for context).

   Usage: bench-diff [--threshold R] BASELINE.json CURRENT.json
     --threshold R   gate at ratio > 1+R (lower-better) or
                     < 1/(1+R) (higher-better); default 0.25.

   Exit 0: all gated metrics within threshold.
   Exit 1: at least one regression.
   Exit 2: usage/parse error, or no gated metric joined (a silent
           no-op gate would be worse than none).

   A second mode renders the whole committed trajectory instead of
   gating one step of it:

     bench-diff --trajectory OUT.md BENCH_PR5.json BENCH_PR6.json ...

   joins every row id across all the given artifacts (columns ordered
   by the number in the file name, so PR10 sorts after PR9) into one
   markdown table — value, unit, better-direction, and a provenance
   footnote per artifact. `make bench-trajectory` regenerates
   docs/BENCH_TRAJECTORY.md this way.

   Self-contained (no JSON library), in the spirit of
   bin/trace_check.ml. *)

exception Bad of string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(* --- parser (recursive descent over the whole file) --- *)

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let advance c = c.i <- c.i + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected %c, found %c" ch x))
  | None -> raise (Bad (Printf.sprintf "expected %c, found end of input" ch))

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else raise (Bad (Printf.sprintf "bad literal (expected %s)" word))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some ('"' | '\\' | '/') -> Buffer.add_char buf c.s.[c.i]
      | Some 'u' ->
        if c.i + 4 >= String.length c.s then raise (Bad "truncated \\u escape");
        Buffer.add_string buf ("\\u" ^ String.sub c.s (c.i + 1) 4);
        c.i <- c.i + 4
      | _ -> raise (Bad "bad escape"));
      advance c;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.i in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numchar ch | None -> false) do
    advance c
  done;
  let lit = String.sub c.s start (c.i - start) in
  match float_of_string_opt lit with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "bad number %S" lit))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' -> parse_obj c
  | Some '[' -> parse_list c
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> raise (Bad (Printf.sprintf "unexpected character %c" ch))
  | None -> raise (Bad "unexpected end of input")

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec loop () =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      fields := (key, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        loop ()
      | Some '}' -> advance c
      | _ -> raise (Bad "expected , or } in object")
    in
    loop ();
    Obj (List.rev !fields)
  end

and parse_list c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    List []
  end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value c in
      items := v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        loop ()
      | Some ']' -> advance c
      | _ -> raise (Bad "expected , or ] in array")
    in
    loop ();
    List (List.rev !items)
  end

let parse_file path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "bench-diff: %s\n" msg;
      exit 2
  in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let c = { s; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length s then raise (Bad "trailing garbage after value");
  v

(* --- row extraction --- *)

type direction = Lower | Higher | Info

type row = { r_id : string; r_dir : direction; r_unit : string; r_value : float }

(* Small integer fields that identify a configuration rather than
   measure it (the pr5/pr6 schemas carry these). *)
let identity_field = function
  | "scale" | "edge_factor" | "requests" | "trials" | "domains" -> true
  | _ -> false

let ends_with suffix s =
  let ns = String.length s and nx = String.length suffix in
  ns >= nx && String.sub s (ns - nx) nx = suffix

let infer_direction name =
  if
    ends_with "_s" name || ends_with "_ns" name || name = "ns_per_run"
    || ends_with "_ms" name
  then Lower
  else if ends_with "teps" name || ends_with "speedup" name then Higher
  else Info

let direction_of_string = function
  | "lower" -> Lower
  | "higher" -> Higher
  | _ -> Info

(* Units for generically flattened rows, read off the same naming
   convention the direction inference uses. *)
let infer_unit name =
  if ends_with "_s" name then "s"
  else if ends_with "_ns" name || name = "ns_per_run" then "ns"
  else if ends_with "_ms" name then "ms"
  else if ends_with "teps" name then "TEPS"
  else if ends_with "speedup" name then "x"
  else ""

let fields = function Obj f -> f | _ -> []

let str_field o key =
  match List.assoc_opt key (fields o) with Some (Str s) -> Some s | _ -> None

let num_field o key =
  match List.assoc_opt key (fields o) with Some (Num v) -> Some v | _ -> None

(* ufp-bench-pr8/1 rows carry their own id and direction. *)
let rows_of_pr8 items =
  List.filter_map
    (fun item ->
      match (str_field item "id", num_field item "value") with
      | Some id, Some v ->
        let dir =
          match str_field item "better" with
          | Some d -> direction_of_string d
          | None -> Info
        in
        let unit = Option.value (str_field item "unit") ~default:"" in
        Some { r_id = id; r_dir = dir; r_unit = unit; r_value = v }
      | _ -> None)
    items

(* Generic flattening for the pr5/pr6 row shapes. *)
let rows_of_generic arr_name items =
  List.concat_map
    (fun item ->
      let id_parts =
        List.filter_map
          (fun (k, v) ->
            match v with
            | Str s -> Some (Printf.sprintf "%s=%s" k s)
            | Num n when identity_field k && Float.is_integer n ->
              Some (Printf.sprintf "%s=%d" k (int_of_float n))
            | _ -> None)
          (fields item)
      in
      let id_base =
        if id_parts = [] then arr_name
        else Printf.sprintf "%s{%s}" arr_name (String.concat "," id_parts)
      in
      List.filter_map
        (fun (k, v) ->
          match v with
          | Num n when not (identity_field k) ->
            Some
              {
                r_id = id_base ^ "." ^ k;
                r_dir = infer_direction k;
                r_unit = infer_unit k;
                r_value = n;
              }
          | _ -> None)
        (fields item))
    items

let extract_rows doc =
  List.concat_map
    (fun (key, v) ->
      match (key, v) with
      | ("schema" | "provenance"), _ -> []
      | "rows", List items -> rows_of_pr8 items
      | _, List items
        when List.exists (function Obj _ -> true | _ -> false) items ->
        rows_of_generic key items
      | _ -> [])
    (fields doc)

let provenance_line doc =
  match List.assoc_opt "provenance" (fields doc) with
  | Some p ->
    let part key =
      match List.assoc_opt key (fields p) with
      | Some (Str s) -> Printf.sprintf "%s=%s" key s
      | Some (Num n) when Float.is_integer n ->
        Printf.sprintf "%s=%d" key (int_of_float n)
      | _ -> ""
    in
    String.concat " "
      (List.filter
         (fun s -> s <> "")
         [ part "git_rev"; part "ocaml_version"; part "recommended_domains" ])
  | None -> "(no provenance stamp)"

(* --- trajectory rendering --- *)

(* Column order: the PR number embedded in the file name (BENCH_PR10
   after BENCH_PR9, which plain lexicographic order gets wrong), name
   as tie-break. *)
let file_ordinal path =
  let base = Filename.basename path in
  let n = String.length base in
  let best = ref (-1) in
  let i = ref 0 in
  while !i < n do
    if base.[!i] >= '0' && base.[!i] <= '9' then begin
      let j = ref !i in
      while !j < n && base.[!j] >= '0' && base.[!j] <= '9' do incr j done;
      (match int_of_string_opt (String.sub base !i (!j - !i)) with
      | Some v when v > !best -> best := v
      | _ -> ());
      i := !j
    end
    else incr i
  done;
  !best

let direction_label = function
  | Lower -> "lower"
  | Higher -> "higher"
  | Info -> "info"

let write_trajectory out_path files ~load =
  let files =
    List.stable_sort
      (fun a b ->
        let c = compare (file_ordinal a) (file_ordinal b) in
        if c <> 0 then c else compare a b)
      files
  in
  let columns =
    List.map
      (fun path ->
        let doc = load path in
        (Filename.basename path, extract_rows doc, provenance_line doc))
      files
  in
  (* Row order: first appearance across the artifacts in column
     order, so metrics appear in the order they entered the
     trajectory. *)
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (_, rows, _) ->
      List.iter
        (fun r ->
          if not (Hashtbl.mem seen r.r_id) then begin
            Hashtbl.add seen r.r_id r;
            order := r.r_id :: !order
          end)
        rows)
    columns;
  let ids = List.rev !order in
  let buf = Buffer.create 4096 in
  let bprintf fmt = Printf.bprintf buf fmt in
  bprintf "# Benchmark trajectory\n\n";
  bprintf
    "Every committed `BENCH_PR*.json` artifact joined by row id — one \
     column per PR, in PR order. Regenerate with `make bench-trajectory` \
     (this file is generated; edit `bin/bench_diff.ml` instead). A `—` \
     means the artifact does not carry that row; `better` says which \
     direction is an improvement (`info` rows are context, never \
     gated).\n\n";
  bprintf "| benchmark | unit | better |%s\n"
    (String.concat ""
       (List.map (fun (name, _, _) -> " " ^ name ^ " |") columns));
  bprintf "|---|---|---|%s\n"
    (String.concat "" (List.map (fun _ -> "---|") columns));
  List.iter
    (fun id ->
      let proto = Hashtbl.find seen id in
      bprintf "| `%s` | %s | %s |" id
        (if proto.r_unit = "" then " " else proto.r_unit)
        (direction_label proto.r_dir);
      List.iter
        (fun (_, rows, _) ->
          match List.find_opt (fun r -> r.r_id = id) rows with
          | Some r -> bprintf " %.6g |" r.r_value
          | None -> bprintf " — |")
        columns;
      bprintf "\n")
    ids;
  bprintf "\n## Provenance\n\n";
  List.iter
    (fun (name, rows, prov) ->
      bprintf "- `%s` — %d rows — %s\n" name (List.length rows) prov)
    columns;
  let oc =
    try open_out out_path
    with Sys_error msg ->
      Printf.eprintf "bench-diff: %s\n" msg;
      exit 2
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s: %d benchmarks x %d artifacts\n" out_path
    (List.length ids) (List.length columns)

(* --- the gate --- *)

let () =
  let threshold = ref 0.25 in
  let trajectory_out = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | "--threshold" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0.0 ->
        threshold := t;
        parse_args rest
      | _ ->
        prerr_endline "bench-diff: --threshold expects a positive number";
        exit 2)
    | "--trajectory" :: out :: rest ->
      trajectory_out := Some out;
      parse_args rest
    | arg :: rest ->
      paths := arg :: !paths;
      parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let load path =
    try parse_file path
    with Bad msg ->
      Printf.eprintf "bench-diff: %s: %s\n" path msg;
      exit 2
  in
  (match !trajectory_out with
  | Some out ->
    (match List.rev !paths with
    | [] ->
      prerr_endline
        "usage: bench-diff --trajectory OUT.md BENCH_PR*.json...";
      exit 2
    | files ->
      write_trajectory out files ~load;
      exit 0)
  | None -> ());
  let base_path, cur_path =
    match List.rev !paths with
    | [ b; c ] -> (b, c)
    | _ ->
      prerr_endline "usage: bench-diff [--threshold R] BASELINE.json CURRENT.json";
      exit 2
  in
  let base_doc = load base_path and cur_doc = load cur_path in
  let base_rows = extract_rows base_doc and cur_rows = extract_rows cur_doc in
  Printf.printf "baseline: %s  %s\n" base_path (provenance_line base_doc);
  Printf.printf "current : %s  %s\n" cur_path (provenance_line cur_doc);
  Printf.printf "threshold: %.2fx\n\n" (1.0 +. !threshold);
  Printf.printf "%-58s %14s %14s %8s  %s\n" "benchmark" "baseline" "current"
    "ratio" "verdict";
  let regressions = ref 0 in
  let gated = ref 0 in
  let joined = ref 0 in
  List.iter
    (fun cur ->
      match List.find_opt (fun b -> b.r_id = cur.r_id) base_rows with
      | None -> ()
      | Some base ->
        incr joined;
        let ratio =
          if base.r_value = 0.0 then
            if cur.r_value = 0.0 then 1.0 else infinity
          else cur.r_value /. base.r_value
        in
        let verdict =
          match cur.r_dir with
          | Info -> "info"
          | Lower | Higher ->
            incr gated;
            let bad =
              match cur.r_dir with
              | Lower -> ratio > 1.0 +. !threshold
              | Higher -> ratio < 1.0 /. (1.0 +. !threshold)
              | Info -> false
            in
            if bad then begin
              incr regressions;
              "REGRESSED"
            end
            else "ok"
        in
        Printf.printf "%-58s %14.6g %14.6g %8.3f  %s\n" cur.r_id base.r_value
          cur.r_value ratio verdict)
    cur_rows;
  let unmatched_cur =
    List.filter
      (fun c -> not (List.exists (fun b -> b.r_id = c.r_id) base_rows))
      cur_rows
  in
  let unmatched_base =
    List.filter
      (fun b -> not (List.exists (fun c -> c.r_id = b.r_id) cur_rows))
      base_rows
  in
  if unmatched_cur <> [] then
    Printf.printf "\n%d current row(s) not in the baseline (new benchmarks?):\n%s\n"
      (List.length unmatched_cur)
      (String.concat "\n"
         (List.map (fun r -> "  + " ^ r.r_id) unmatched_cur));
  if unmatched_base <> [] then
    Printf.printf "\n%d baseline row(s) missing from the current run:\n%s\n"
      (List.length unmatched_base)
      (String.concat "\n"
         (List.map (fun r -> "  - " ^ r.r_id) unmatched_base));
  if !gated = 0 then begin
    Printf.eprintf
      "bench-diff: no gated metric joined (%d rows matched) — disjoint \
       schemas?\n"
      !joined;
    exit 2
  end;
  Printf.printf "\n%d metrics joined, %d gated, %d regressed\n" !joined !gated
    !regressions;
  if !regressions > 0 then exit 1
