(* openmetrics-check — validate a Prometheus/OpenMetrics text
   exposition as produced by `ufp solve --metrics openmetrics`
   (Ufp_obs.Openmetrics.render).

   Checks, per docs/OBSERVABILITY.md:
     1. every line is a `# TYPE|HELP|UNIT` comment, a sample, or the
        final `# EOF` — which must be present, exactly once, as the
        last line;
     2. metric and label names match the OpenMetrics charset, and no
        family is declared twice;
     3. samples appear after their family's TYPE line and before the
        next one (families are contiguous), with the suffix their type
        allows (`_total` for counters, bare for gauges,
        `_bucket`/`_sum`/`_count` for histograms);
     4. counter values are finite and non-negative;
     5. histogram bucket series are cumulative: counts non-decreasing
        as `le` increases, no duplicate bound, a closing `le="+Inf"`
        equal to the `_count` sample.

   Exit 0 when clean; exit 1 with a line-numbered diagnostic
   otherwise; exit 2 on usage/IO errors.  Self-contained, in the
   spirit of bin/trace_check.ml. *)

exception Bad of string

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let is_label_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_label_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let parse_float lit =
  match lit with
  | "+Inf" | "Inf" -> infinity
  | "-Inf" -> neg_infinity
  | "NaN" -> nan
  | _ -> (
    match float_of_string_opt lit with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "bad float %S" lit)))

(* --- sample-line parsing: name[{labels}] value [timestamp] --- *)

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let advance c = c.i <- c.i + 1

let parse_name c =
  let start = c.i in
  (match peek c with
  | Some ch when is_name_start ch -> advance c
  | _ -> raise (Bad "sample does not start with a metric name"));
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    advance c
  done;
  String.sub c.s start (c.i - start)

let parse_label_value c =
  (match peek c with
  | Some '"' -> advance c
  | _ -> raise (Bad "label value is not quoted"));
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> raise (Bad "unterminated label value")
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some ('"' | '\\') -> Buffer.add_char buf c.s.[c.i]
      | _ -> raise (Bad "bad escape in label value"));
      advance c;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_labels c =
  match peek c with
  | Some '{' ->
    advance c;
    let labels = ref [] in
    let rec loop () =
      let start = c.i in
      (match peek c with
      | Some ch when is_label_start ch -> advance c
      | Some '}' when !labels = [] ->
        advance c;
        raise Exit
      | _ -> raise (Bad "bad label name"));
      while (match peek c with Some ch -> is_label_char ch | None -> false) do
        advance c
      done;
      let key = String.sub c.s start (c.i - start) in
      (match peek c with
      | Some '=' -> advance c
      | _ -> raise (Bad "label without ="));
      let v = parse_label_value c in
      labels := (key, v) :: !labels;
      match peek c with
      | Some ',' ->
        advance c;
        loop ()
      | Some '}' -> advance c
      | _ -> raise (Bad "expected , or } in labels")
    in
    (try loop () with Exit -> ());
    List.rev !labels
  | _ -> []

let parse_sample line =
  let c = { s = line; i = 0 } in
  let name = parse_name c in
  let labels = parse_labels c in
  (match peek c with
  | Some (' ' | '\t') -> ()
  | _ -> raise (Bad "no whitespace between name and value"));
  let rest = String.trim (String.sub c.s c.i (String.length c.s - c.i)) in
  let value =
    match String.split_on_char ' ' rest with
    | [ v ] | [ v; _ (* timestamp *) ] -> parse_float v
    | _ -> raise (Bad "expected `value [timestamp]` after the name")
  in
  (name, labels, value)

(* --- family state --- *)

type family = {
  f_name : string;
  f_type : string;  (* counter | gauge | histogram | untyped ... *)
  mutable f_samples : int;
  mutable f_buckets : (float * float) list;  (* (le, cumulative), file order *)
  mutable f_count : float option;
}

let declared : (string, unit) Hashtbl.t = Hashtbl.create 64

(* Suffixes a sample may carry within a family of a given type
   (OpenMetrics: the metric name plus the type's sample suffixes). *)
let suffix_ok ftype suffix =
  match ftype with
  | "counter" -> suffix = "_total" || suffix = "_created"
  | "gauge" | "untyped" | "unknown" -> suffix = ""
  | "histogram" ->
    suffix = "_bucket" || suffix = "_sum" || suffix = "_count"
    || suffix = "_created"
  | _ -> suffix = ""

let close_family = function
  | None -> ()
  | Some f ->
    if f.f_samples = 0 then
      raise (Bad (Printf.sprintf "family %s declared but has no samples" f.f_name));
    if f.f_type = "histogram" then begin
      let buckets = List.rev f.f_buckets in
      if buckets = [] then
        raise (Bad (Printf.sprintf "histogram %s has no buckets" f.f_name));
      let last_le = ref neg_infinity and last_cum = ref neg_infinity in
      List.iter
        (fun (le, cum) ->
          if le = !last_le then
            raise
              (Bad (Printf.sprintf "histogram %s: duplicate le bound" f.f_name));
          if le < !last_le then
            raise
              (Bad
                 (Printf.sprintf "histogram %s: le bounds out of order" f.f_name));
          if cum < !last_cum then
            raise
              (Bad
                 (Printf.sprintf "histogram %s: bucket counts not cumulative"
                    f.f_name));
          last_le := le;
          last_cum := cum)
        buckets;
      let inf_cum =
        match List.rev buckets with
        | (le, cum) :: _ when le = infinity -> cum
        | _ ->
          raise
            (Bad (Printf.sprintf "histogram %s: no le=\"+Inf\" bucket" f.f_name))
      in
      match f.f_count with
      | Some n when n <> inf_cum ->
        raise
          (Bad
             (Printf.sprintf
                "histogram %s: le=\"+Inf\" (%g) disagrees with _count (%g)"
                f.f_name inf_cum n))
      | _ -> ()
    end

let check_sample current line =
  let name, labels, value = parse_sample line in
  match current with
  | None -> raise (Bad (Printf.sprintf "sample %s before any # TYPE" name))
  | Some f ->
    let fn = String.length f.f_name and nn = String.length name in
    if not (nn >= fn && String.sub name 0 fn = f.f_name) then
      raise
        (Bad
           (Printf.sprintf "sample %s outside its family (%s)" name f.f_name));
    let suffix = String.sub name fn (nn - fn) in
    if not (suffix_ok f.f_type suffix) then
      raise
        (Bad
           (Printf.sprintf "sample %s: suffix %S not valid for a %s" name
              suffix f.f_type));
    f.f_samples <- f.f_samples + 1;
    (match f.f_type with
    | "counter" when suffix = "_total" ->
      if Float.is_nan value || value < 0.0 then
        raise (Bad (Printf.sprintf "counter %s is negative or NaN" name))
    | "histogram" when suffix = "_bucket" -> (
      match List.assoc_opt "le" labels with
      | None -> raise (Bad (Printf.sprintf "%s without an le label" name))
      | Some le -> f.f_buckets <- (parse_float le, value) :: f.f_buckets)
    | "histogram" when suffix = "_count" -> f.f_count <- Some value
    | _ -> ())

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: openmetrics-check FILE";
      exit 2
  in
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "openmetrics-check: %s\n" msg;
      exit 2
  in
  let lineno = ref 0 in
  let samples = ref 0 in
  let families = ref 0 in
  let current : family option ref = ref None in
  let seen_eof = ref false in
  let fail msg =
    Printf.eprintf "openmetrics-check: %s:%d: %s\n" path !lineno msg;
    exit 1
  in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       try
         if !seen_eof then raise (Bad "content after # EOF");
         if line = "# EOF" then begin
           close_family !current;
           current := None;
           seen_eof := true
         end
         else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
           close_family !current;
           let rest = String.sub line 7 (String.length line - 7) in
           match String.split_on_char ' ' rest with
           | [ name; ftype ] ->
             if name = "" || not (is_name_start name.[0]) || not (String.for_all is_name_char name)
             then raise (Bad (Printf.sprintf "bad metric name %S" name));
             if Hashtbl.mem declared name then
               raise (Bad (Printf.sprintf "family %s declared twice" name));
             Hashtbl.add declared name ();
             incr families;
             current :=
               Some
                 {
                   f_name = name;
                   f_type = ftype;
                   f_samples = 0;
                   f_buckets = [];
                   f_count = None;
                 }
           | _ -> raise (Bad "malformed # TYPE line")
         end
         else if
           String.length line >= 7
           && (String.sub line 0 7 = "# HELP " || String.sub line 0 7 = "# UNIT ")
         then ()
         else if String.trim line = "" then raise (Bad "blank line")
         else begin
           check_sample !current line;
           incr samples
         end
       with Bad msg -> fail msg
     done
   with End_of_file -> close_in ic);
  if not !seen_eof then begin
    Printf.eprintf "openmetrics-check: %s: missing final # EOF\n" path;
    exit 1
  end;
  Printf.printf "openmetrics-check: %s: %d families, %d samples OK\n" path
    !families !samples
