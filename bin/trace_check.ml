(* trace-check — validate a Chrome trace_event JSONL file as produced
   by `ufp solve --trace` (Ufp_obs.Trace.export_jsonl).

   Checks, per docs/OBSERVABILITY.md:
     1. every line parses as a standalone JSON object;
     2. every object carries string "name", string "ph" (one of
        B/E/i), and numeric "ts";
     3. B/E events balance like parentheses *per tid* (never more E
        than B seen on a track, zero depth on every track at end of
        file) — parallel runs (`ufp payments --jobs N`) put each
        domain's spans on its own track;
     4. timestamps are non-decreasing globally, across tracks (the
        tracer stamps them under its append lock).

   Exit 0 when clean; exit 1 with a line-numbered diagnostic
   otherwise.  Self-contained (no JSON library): the grammar accepted
   is full JSON, via a small recursive-descent parser. *)

exception Bad of string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(* --- parser --- *)

type cursor = { s : string; mutable i : int }

let peek c = if c.i < String.length c.s then Some c.s.[c.i] else None

let advance c = c.i <- c.i + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> raise (Bad (Printf.sprintf "expected %c, found %c" ch x))
  | None -> raise (Bad (Printf.sprintf "expected %c, found end of line" ch))

let literal c word value =
  let n = String.length word in
  if c.i + n <= String.length c.s && String.sub c.s c.i n = word then begin
    c.i <- c.i + n;
    value
  end
  else raise (Bad (Printf.sprintf "bad literal (expected %s)" word))

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> raise (Bad "unterminated string")
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some ('"' | '\\' | '/') -> Buffer.add_char buf c.s.[c.i]
      | Some 'u' ->
        if c.i + 4 >= String.length c.s then raise (Bad "truncated \\u escape");
        (* Keep the raw escape: the checker only compares ASCII names. *)
        Buffer.add_string buf ("\\u" ^ String.sub c.s (c.i + 1) 4);
        c.i <- c.i + 4
      | _ -> raise (Bad "bad escape"));
      advance c;
      loop ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.i in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numchar ch | None -> false) do
    advance c
  done;
  let lit = String.sub c.s start (c.i - start) in
  match float_of_string_opt lit with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "bad number %S" lit))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some '{' -> parse_obj c
  | Some '[' -> parse_list c
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> raise (Bad (Printf.sprintf "unexpected character %c" ch))
  | None -> raise (Bad "unexpected end of line")

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec loop () =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      fields := (key, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        loop ()
      | Some '}' -> advance c
      | _ -> raise (Bad "expected , or } in object")
    in
    loop ();
    Obj (List.rev !fields)
  end

and parse_list c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    List []
  end
  else begin
    let items = ref [] in
    let rec loop () =
      let v = parse_value c in
      items := v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        loop ()
      | Some ']' -> advance c
      | _ -> raise (Bad "expected , or ] in array")
    in
    loop ();
    List (List.rev !items)
  end

let parse_line line =
  let c = { s = line; i = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.i <> String.length line then raise (Bad "trailing garbage after value");
  v

(* --- trace_event checks --- *)

let field obj key =
  match obj with
  | Obj fields -> List.assoc_opt key fields
  | _ -> raise (Bad "event is not a JSON object")

(* Per-track (tid) span depth: events from different domains interleave
   in the file, but B/E nesting is only meaningful within one track. *)
let depths : (int, int) Hashtbl.t = Hashtbl.create 8

let depth_of tid = Option.value ~default:0 (Hashtbl.find_opt depths tid)

let check_event ~last_ts obj =
  let name =
    match field obj "name" with
    | Some (Str s) -> s
    | _ -> raise (Bad "missing or non-string \"name\"")
  in
  let ph =
    match field obj "ph" with
    | Some (Str ("B" | "E" | "i" as p)) -> p
    | Some (Str p) -> raise (Bad (Printf.sprintf "unexpected phase %S" p))
    | _ -> raise (Bad "missing or non-string \"ph\"")
  in
  let ts =
    match field obj "ts" with
    | Some (Num t) -> t
    | _ -> raise (Bad "missing or non-numeric \"ts\"")
  in
  let tid =
    (* Single-domain exports predating the tid tag still validate. *)
    match field obj "tid" with
    | None -> 1
    | Some (Num t) when Float.is_integer t -> int_of_float t
    | Some _ -> raise (Bad "non-integer \"tid\"")
  in
  if ts < last_ts then
    raise
      (Bad (Printf.sprintf "timestamp regressed (%.3f after %.3f)" ts last_ts));
  (match ph with
  | "B" -> Hashtbl.replace depths tid (depth_of tid + 1)
  | "E" ->
    let d = depth_of tid in
    if d = 0 then
      raise
        (Bad (Printf.sprintf "unmatched span end for %S on tid %d" name tid));
    Hashtbl.replace depths tid (d - 1)
  | _ -> ());
  ts

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
      prerr_endline "usage: trace-check FILE.jsonl";
      exit 2
  in
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "trace-check: %s\n" msg;
      exit 2
  in
  let events = ref 0 in
  let last_ts = ref neg_infinity in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         (try last_ts := check_event ~last_ts:!last_ts (parse_line line)
          with Bad msg ->
            Printf.eprintf "trace-check: %s:%d: %s\n" path !lineno msg;
            exit 1);
         incr events
       end
     done
   with End_of_file -> close_in ic);
  let open_spans =
    Hashtbl.fold
      (fun tid d acc -> if d <> 0 then (tid, d) :: acc else acc)
      depths []
  in
  if open_spans <> [] then begin
    List.iter
      (fun (tid, d) ->
        Printf.eprintf
          "trace-check: %s: %d span(s) left open on tid %d at end of file\n"
          path d tid)
      (List.sort compare open_spans);
    exit 1
  end;
  let tracks = Hashtbl.length depths in
  Printf.printf "trace-check: %s: %d events, spans balanced (%d track%s)\n" path
    !events tracks
    (if tracks = 1 then "" else "s")
