(* ufp — command line interface to the truthful unsplittable flow
   library.

   Subcommands:
     generate    build an instance file (random or paper lower-bound)
     solve       run an allocation algorithm on an instance file
     payments    run the truthful mechanism and print critical payments
     lp          certified fractional bounds for an instance file
     experiment  run the paper-reproduction experiments *)

module Graph = Ufp_graph.Graph
module Gen = Ufp_graph.Generators
module Instance = Ufp_instance.Instance
module Request = Ufp_instance.Request
module Solution = Ufp_instance.Solution
module Workloads = Ufp_instance.Workloads
module Io = Ufp_instance.Io
module Bounded_ufp = Ufp_core.Bounded_ufp
module Repeat = Ufp_core.Bounded_ufp_repeat
module Baselines = Ufp_core.Baselines
module Exact = Ufp_lp.Exact
module Mcf = Ufp_lp.Mcf
module Ufp_mechanism = Ufp_mech.Ufp_mechanism
module Registry = Ufp_experiments.Registry
module Rng = Ufp_prelude.Rng
module Metrics = Ufp_obs.Metrics
module Obs_trace = Ufp_obs.Trace
module Openmetrics = Ufp_obs.Openmetrics
module Profile = Ufp_obs.Profile
module Pool = Ufp_par.Pool

open Cmdliner
module Float_tol = Ufp_prelude.Float_tol

let load_instance path =
  match Io.load path with
  | Ok inst -> inst
  | Error msg ->
    Printf.eprintf "error: cannot load %s: %s\n" path msg;
    exit 1

(* --- observability (--metrics / --trace / --profile) --- *)

let metrics_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("text", `Text); ("json", `Json); ("openmetrics", `Openmetrics) ]))
        None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Report the work-counter deltas of the run (Dijkstra \
           relaxations, selector cache traffic, dual updates, payment \
           probes, ...) as a $(b,text) table, a $(b,json) object, or an \
           $(b,openmetrics) (Prometheus text) exposition. See \
           docs/OBSERVABILITY.md for the catalogue and formats.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the $(b,--metrics) rendering to $(docv) instead of \
           stdout, keeping it clean for scrapers and validators \
           (bin/openmetrics_check.ml) when the solve itself prints.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record solver spans and write them to $(docv) as Chrome \
           trace_event JSONL (load in chrome://tracing or \
           ui.perfetto.dev).")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Fold the span stream plus GC deltas into a per-phase profile \
           (self/total wall time, minor/major allocation): a text table \
           on stderr and ufp-profile/1 JSON written to $(docv). Implies \
           span recording; composes with $(b,--trace), $(b,--metrics) \
           and $(b,--jobs).")

(* Wraps the measured part of a subcommand: snapshots the metric
   registry around [f], then renders the delta, the profile and/or the
   trace as requested.  With no flag given this is just [f ()] plus
   two cheap snapshots.  --profile turns the tracer on with GC
   sampling even without --trace; the two flags share one recording,
   so combining them costs one run. *)
let with_observability ~metrics ~metrics_out ~trace ~profile f =
  let tracing = Option.is_some trace || Option.is_some profile in
  if tracing then Obs_trace.start ~gc:(Option.is_some profile) ();
  let before = Metrics.snapshot () in
  let result = f () in
  let delta = Metrics.diff before (Metrics.snapshot ()) in
  if tracing then Obs_trace.stop ();
  (match metrics with
  | None -> ()
  | Some format ->
    let render oc =
      match format with
      | `Text ->
        Ufp_prelude.Table.print ~oc (Metrics.to_table ~title:"run metrics" delta)
      | `Json ->
        output_string oc (Metrics.to_json delta);
        output_char oc '\n'
      | `Openmetrics -> output_string oc (Openmetrics.render delta)
    in
    (match metrics_out with
    | None -> render stdout
    | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> render oc)));
  (match profile with
  | Some path ->
    let p = Profile.of_trace () in
    Profile.save_json path p;
    Ufp_prelude.Table.print ~oc:stderr (Profile.to_table ~title:"profile" p)
  | None -> ());
  (match trace with
  | Some path ->
    Obs_trace.save_jsonl path;
    Printf.eprintf "trace: %d events written to %s%s\n" (Obs_trace.n_events ())
      path
      (let d = Obs_trace.n_dropped () in
       if d > 0 then Printf.sprintf " (%d oldest events dropped)" d else "")
  | None -> ());
  result

(* --- generate --- *)

let generate topology seed rows cols capacity requests levels b scale
    edge_factor out =
  let inst =
    match topology with
    | "grid" ->
      let g = Gen.grid ~rows ~cols ~capacity in
      let rng = Rng.create seed in
      Instance.create g (Workloads.random_requests rng g ~count:requests ())
    | "er" ->
      let rng = Rng.create seed in
      let g =
        Gen.erdos_renyi rng ~n:(rows * cols) ~edge_prob:0.3 ~directed:false
          ~capacity_lo:capacity ~capacity_hi:(capacity *. 1.5)
      in
      Instance.create g (Workloads.random_requests rng g ~count:requests ())
    | "staircase" ->
      let sc = Gen.staircase ~levels ~capacity:(float_of_int b) in
      Instance.create sc.Gen.graph (Workloads.staircase_requests sc ~per_source:b)
    | "gadget" ->
      Instance.create
        (Gen.gadget7 ~capacity:(float_of_int b))
        (Workloads.gadget7_requests ~per_pair:b)
    | "rmat" ->
      (* Degree-skewed Graph500-style instance: requests are laid from
         the highest-degree hubs so the workload survives the sparse
         directed topology (a uniformly random pair is usually
         unreachable at scale). *)
      let rng = Rng.create seed in
      let g =
        Gen.rmat rng ~scale ~edge_factor ~capacity_lo:capacity
          ~capacity_hi:(capacity *. 1.5) ()
      in
      Instance.create g (Workloads.hub_requests rng g ~count:requests ())
    | other ->
      Printf.eprintf
        "error: unknown topology %S (grid|er|staircase|gadget|rmat)\n" other;
      exit 1
  in
  (match out with
  | Some path ->
    Io.save path inst;
    Printf.printf "wrote %s: %d vertices, %d edges, %d requests\n" path
      (Graph.n_vertices (Instance.graph inst))
      (Graph.n_edges (Instance.graph inst))
      (Instance.n_requests inst)
  | None -> print_string (Io.to_string inst));
  0

let topology_arg =
  Arg.(value & opt string "grid" & info [ "topology"; "t" ] ~docv:"KIND"
         ~doc:"Instance family: grid, er, staircase (Figure 2), gadget \
               (Figure 3), rmat (Graph500-style recursive matrix; see \
               $(b,--scale) and $(b,--edge-factor)).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let rows_arg = Arg.(value & opt int 5 & info [ "rows" ] ~doc:"Grid rows.")

let cols_arg = Arg.(value & opt int 5 & info [ "cols" ] ~doc:"Grid columns.")

let capacity_arg =
  Arg.(value & opt float 20.0 & info [ "capacity"; "c" ] ~doc:"Edge capacity (B).")

let requests_arg =
  Arg.(value & opt int 50 & info [ "requests"; "r" ] ~doc:"Number of requests.")

let levels_arg =
  Arg.(value & opt int 16 & info [ "levels"; "l" ] ~doc:"Staircase levels.")

let b_arg =
  Arg.(value & opt int 8 & info [ "b" ] ~doc:"Capacity parameter B for the lower-bound families.")

let scale_arg =
  Arg.(value & opt int 14 & info [ "scale" ] ~docv:"S"
         ~doc:"RMAT scale: the graph has $(b,2^S) vertices.")

let edge_factor_arg =
  Arg.(value & opt int 16 & info [ "edge-factor" ] ~docv:"EF"
         ~doc:"RMAT edges per vertex: $(b,EF * 2^scale) edges are drawn.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Output file (stdout when omitted).")

let generate_cmd =
  let doc = "generate a UFP instance file" in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(
      const generate $ topology_arg $ seed_arg $ rows_arg $ cols_arg
      $ capacity_arg $ requests_arg $ levels_arg $ b_arg $ scale_arg
      $ edge_factor_arg $ out_arg)

(* --- solve --- *)

(* Human-readable account of the --jobs choice; None for the silent
   sequential default so single-domain output is unchanged. *)
let pool_description jobs =
  if jobs = 1 then None
  else
    let domains =
      if jobs = 0 then Domain.recommended_domain_count () else jobs
    in
    Some
      (if domains <= 1 then
         Printf.sprintf "sequential (%d domain recommended)" domains
       else Printf.sprintf "parallel across %d domains" domains)

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.jobs_from_env ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Fan the parallel regions — stale selector-tree rebuilds under \
           $(b,solve), per-winner critical-value bisections under \
           $(b,payments) — out over $(docv) domains (the Ufp_par pool). \
           $(b,1) (the default) stays sequential; $(b,0) means the \
           runtime's recommended domain count. Results are bitwise \
           identical at any job count. Defaults to \\$UFP_JOBS when set.")

let sssp_arg =
  Arg.(
    value
    & opt (enum [ ("dijkstra", `Dijkstra); ("delta", `Delta) ]) `Dijkstra
    & info [ "sssp" ] ~docv:"KERNEL"
        ~doc:
          "Shortest-path-tree kernel for selector rebuilds: \
           $(b,dijkstra) (sequential binary heap, the default) or \
           $(b,delta) (bucketed delta-stepping, which parallelises \
           $(i,inside) each tree over the $(b,--jobs) pool instead of \
           across trees). The two produce byte-identical solutions.")

let pick_algo name eps seed pool sssp =
  match name with
  | "bounded-ufp" -> fun inst -> Bounded_ufp.solve ~eps ~pool ~sssp inst
  | "repeat" -> fun inst -> Repeat.solve ~eps ~pool ~sssp inst
  | "greedy-density" -> Baselines.greedy_by_density
  | "greedy-value" -> Baselines.greedy_by_value
  | "threshold-pd" -> fun inst -> Baselines.threshold_pd ~eps ~pool ~sssp inst
  | "rounding" -> Baselines.randomized_rounding ~eps:(Float.min eps 0.5) ~seed
  | "exact" -> (fun inst -> Exact.solve inst)
  | other ->
    Printf.eprintf
      "error: unknown algorithm %S (bounded-ufp|repeat|greedy-density|\
       greedy-value|threshold-pd|rounding|exact)\n"
      other;
    exit 1

let warn_premise inst ~eps =
  if not (Instance.meets_bound inst ~eps) then
    Printf.printf
      "note: B = %.1f is below ln m / eps^2 = %.1f — the Theorem 3.1 premise \
       fails, so the primal-dual algorithms may stop early (try a larger \
       capacity or eps).\n"
      (Instance.bound inst)
      (log (float_of_int (Graph.n_edges (Instance.graph inst))) /. (eps *. eps))

let solve path algo_name eps seed jobs sssp verbose audit out metrics
    metrics_out trace profile =
  let inst = Instance.normalize (load_instance path) in
  warn_premise inst ~eps;
  Pool.with_jobs jobs @@ fun pool ->
  let algo = pick_algo algo_name eps seed pool sssp in
  let sol, elapsed =
    try
      with_observability ~metrics ~metrics_out ~trace ~profile (fun () ->
          Ufp_experiments.Harness.time_it (fun () -> algo inst))
    with Exact.Too_large msg ->
      Printf.eprintf "error: instance too large for the exact solver: %s\n" msg;
      exit 1
  in
  let repetitions = algo_name = "repeat" in
  let value = Solution.value inst sol in
  Printf.printf "algorithm : %s\n" algo_name;
  (match pool_description jobs with
  | None -> ()
  | Some d -> Printf.printf "selector rebuilds: %s\n" d);
  Printf.printf "allocated : %d / %d requests\n" (List.length sol)
    (Instance.n_requests inst);
  Printf.printf "value     : %.6g\n" value;
  Printf.printf "feasible  : %b\n" (Solution.is_feasible ~repetitions inst sol);
  Printf.printf "time      : %.3fs\n" elapsed;
  if algo_name = "bounded-ufp" then begin
    let run = Bounded_ufp.run ~eps ~pool ~sssp inst in
    Printf.printf "certified OPT upper bound: %.6g (ratio <= %.4f)\n"
      run.Bounded_ufp.certified_upper_bound
      (if value > 0.0 then run.Bounded_ufp.certified_upper_bound /. value
       else infinity)
  end;
  if audit then begin
    if algo_name <> "bounded-ufp" then
      Printf.printf "note: --audit applies to bounded-ufp only\n"
    else begin
      let run = Bounded_ufp.run ~eps ~pool ~sssp inst in
      Format.printf "%a" Ufp_core.Audit.pp (Ufp_core.Audit.bounded_ufp_run inst run)
    end
  end;
  (match out with
  | Some out_path ->
    Io.save_solution out_path sol;
    Printf.printf "solution written to %s\n" out_path
  | None -> ());
  if verbose then Format.printf "%a@." Solution.pp sol;
  0

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Instance file (see $(b,ufp generate)).")

let algo_arg =
  Arg.(value & opt string "bounded-ufp" & info [ "algo"; "a" ] ~docv:"ALGO"
         ~doc:"Allocation algorithm.")

let eps_arg =
  Arg.(value & opt float 0.3 & info [ "eps"; "e" ] ~doc:"Accuracy parameter.")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the allocation paths.")

let audit_arg =
  Arg.(value & flag & info [ "audit" ]
         ~doc:"Audit the run: feasibility, trace consistency, weak duality, \
               scaled-dual feasibility (bounded-ufp only).")

let solve_cmd =
  let doc = "solve a UFP instance" in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(
      const solve $ file_arg $ algo_arg $ eps_arg $ seed_arg $ jobs_arg
      $ sssp_arg $ verbose_arg $ audit_arg $ out_arg $ metrics_arg
      $ metrics_out_arg $ trace_arg $ profile_arg)

(* --- payments --- *)

let payments path eps jobs metrics metrics_out trace profile =
  let inst = Instance.normalize (load_instance path) in
  warn_premise inst ~eps;
  let algo = Bounded_ufp.solve ~eps in
  let won, pay =
    Pool.with_jobs jobs @@ fun pool ->
    with_observability ~metrics ~metrics_out ~trace ~profile (fun () ->
        (* One recorded forward solve serves double duty: its solution
           is the winner set, and its trace carries each winner's
           acceptance threshold — the warm-start hint that seeds the
           per-winner bisection brackets below. *)
        let run = Bounded_ufp.run ~eps inst in
        let won = Array.make (Instance.n_requests inst) false in
        List.iter
          (fun a -> won.(a.Solution.request) <- true)
          run.Bounded_ufp.solution;
        let hints = Ufp_mechanism.acceptance_thresholds inst run in
        ( won,
          Ufp_mechanism.payments ~rel_tol:Float_tol.payment_rel_tol
            ~warm:(`Hinted (fun i -> hints.(i)))
            ~pool algo inst ))
  in
  Printf.printf "truthful mechanism: Bounded-UFP(%.2f) + critical-value payments\n"
    eps;
  (match pool_description jobs with
  | None -> ()
  | Some d -> Printf.printf "payment probes: %s\n" d);
  Printf.printf "%-8s %-10s %-10s %-6s %-12s\n" "request" "demand" "value" "wins"
    "payment";
  Array.iteri
    (fun i p ->
      let r = Instance.request inst i in
      Printf.printf "%-8d %-10.4f %-10.4f %-6s %-12.6f\n" i r.Request.demand
        r.Request.value
        (if won.(i) then "yes" else "no")
        p)
    pay;
  let revenue = Array.fold_left ( +. ) 0.0 pay in
  Printf.printf "total revenue: %.6f\n" revenue;
  0

let payments_cmd =
  let doc = "run the truthful mechanism and print critical-value payments" in
  Cmd.v (Cmd.info "payments" ~doc)
    Term.(
      const payments $ file_arg $ eps_arg $ jobs_arg $ metrics_arg
      $ metrics_out_arg $ trace_arg $ profile_arg)

(* --- lp --- *)

let lp path eps =
  let inst = Instance.normalize (load_instance path) in
  let r = Mcf.solve ~eps inst in
  Printf.printf "fractional (Figure 1 relaxation) certified interval:\n";
  Printf.printf "  feasible flow value : %.6g   (lower bound on OPT_LP)\n"
    r.Mcf.feasible_value;
  Printf.printf "  scaled dual bound   : %.6g   (upper bound on OPT_LP >= OPT)\n"
    r.Mcf.upper_bound;
  Printf.printf "  oracle iterations   : %d\n" r.Mcf.iterations;
  0

let lp_cmd =
  let doc = "certified fractional LP bounds (Garg-Konemann)" in
  Cmd.v (Cmd.info "lp" ~doc) Term.(const lp $ file_arg $ eps_arg)

(* --- verify-solution --- *)

let verify_solution inst_path sol_path repetitions =
  let inst = Instance.normalize (load_instance inst_path) in
  match Io.load_solution sol_path with
  | Error msg ->
    Printf.eprintf "error: cannot load %s: %s\n" sol_path msg;
    1
  | Ok sol -> (
    Printf.printf "allocations : %d\n" (List.length sol);
    Printf.printf "value       : %.6g\n" (Solution.value inst sol);
    match Solution.check ~repetitions inst sol with
    | Ok () ->
      Printf.printf "feasible    : yes\n";
      0
    | Error msg ->
      Printf.printf "feasible    : NO — %s\n" msg;
      1)

let sol_file_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"SOLUTION"
         ~doc:"Solution file (see $(b,ufp solve -o)).")

let repetitions_arg =
  Arg.(value & flag & info [ "repetitions" ]
         ~doc:"Allow a request to appear multiple times (Section 5 semantics).")

let verify_solution_cmd =
  let doc = "check a saved solution against its instance" in
  Cmd.v (Cmd.info "verify-solution" ~doc)
    Term.(const verify_solution $ file_arg $ sol_file_arg $ repetitions_arg)

(* --- export-dot --- *)

let export_dot path algo_name eps seed out =
  let inst = Instance.normalize (load_instance path) in
  let dot =
    match algo_name with
    | None -> Ufp_instance.Dot.instance inst
    | Some name ->
      let sol = pick_algo name eps seed `Seq `Dijkstra inst in
      Ufp_instance.Dot.solution inst sol
  in
  (match out with
  | Some out_path ->
    Ufp_instance.Dot.save out_path dot;
    Printf.printf "wrote %s (render with: dot -Tsvg %s > out.svg)\n" out_path
      out_path
  | None -> print_string dot);
  0

let dot_algo_arg =
  Arg.(value & opt (some string) None & info [ "algo"; "a" ] ~docv:"ALGO"
         ~doc:"Also solve with this algorithm and highlight the allocation.")

let export_dot_cmd =
  let doc = "export an instance (optionally with an allocation) as Graphviz DOT" in
  Cmd.v (Cmd.info "export-dot" ~doc)
    Term.(const export_dot $ file_arg $ dot_algo_arg $ eps_arg $ seed_arg $ out_arg)

(* --- inspect --- *)

let inspect path eps =
  let inst = load_instance path in
  let report = Ufp_instance.Diagnostics.analyze inst in
  Format.printf "%a@." Ufp_instance.Diagnostics.pp report;
  let needed = Ufp_instance.Diagnostics.premise_capacity inst ~eps in
  Format.printf
    "Theorem 3.1 premise at eps = %.2f: needs min capacity >= %.1f — %s@." eps
    needed
    (if report.Ufp_instance.Diagnostics.min_capacity >= needed then "satisfied"
     else "NOT satisfied (primal-dual algorithms may stop early)");
  0

let inspect_cmd =
  let doc = "report instance statistics and regime diagnostics" in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const inspect $ file_arg $ eps_arg)

(* --- experiment --- *)

let experiment id_opt list quick =
  if list then begin
    List.iter
      (fun (e : Registry.entry) ->
        Printf.printf "%-18s %-28s %s\n" e.Registry.id e.Registry.paper_artifact
          e.Registry.description)
      Registry.all;
    0
  end
  else
    match id_opt with
    | None ->
      List.iter (Registry.run_and_print ~quick) Registry.all;
      0
    | Some id -> (
      match Registry.find id with
      | Some entry ->
        Registry.run_and_print ~quick entry;
        0
      | None ->
        Printf.eprintf "error: unknown experiment %S; try --list\n" id;
        1)

let exp_id_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"EXP-ID"
         ~doc:"Experiment id from DESIGN.md (all when omitted).")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List experiments.")

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps.")

let experiment_cmd =
  let doc = "run the paper-reproduction experiments" in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const experiment $ exp_id_arg $ list_arg $ quick_arg)

(* --- main --- *)

(* Solver tracing: UFP_LOG=info or UFP_LOG=debug enables the Logs
   sources (ufp.bounded-ufp, ufp.bounded-ufp-repeat, ufp.mcf). *)
let setup_logs () =
  match Sys.getenv_opt "UFP_LOG" with
  | Some level ->
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level
      (match String.lowercase_ascii level with
      | "debug" -> Some Logs.Debug
      | "info" -> Some Logs.Info
      | "warning" -> Some Logs.Warning
      | _ -> None)
  | None -> ()

let () =
  setup_logs ();
  let doc =
    "truthful unsplittable flow for large capacity networks (Azar, Gamzu, \
     Gutner — SPAA'07)"
  in
  let info = Cmd.info "ufp" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ generate_cmd; solve_cmd; payments_cmd; lp_cmd; inspect_cmd;
        verify_solution_cmd; export_dot_cmd; experiment_cmd ]
  in
  exit (Cmd.eval' group)
